//go:build amd64

package vec

import (
	"math/rand"
	"testing"
)

// Each assembly implementation is tested directly (the dispatcher prefers
// AVX512 when available, which would otherwise leave the AVX2 16-lane path
// unexercised on AVX512 machines).
func TestAsmImplementationsDirect(t *testing.T) {
	if !HasAVX2 {
		t.Skip("no AVX2 on this machine")
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 3000; trial++ {
		var blk [16]int32
		x := int32(rng.Intn(64)) - 32
		for i := range blk {
			x += int32(rng.Intn(5))
			blk[i] = x
		}
		pivot := blk[0] + int32(rng.Intn(int(blk[15]-blk[0])+5)) - 2
		want := CountLess16(&blk, pivot)
		if got := countLess16AVX2(&blk, pivot); got != want {
			t.Fatalf("countLess16AVX2(%v, %d) = %d, want %d", blk, pivot, got, want)
		}
		var b8 [8]int32
		copy(b8[:], blk[:8])
		want8 := CountLess8(&b8, pivot)
		if got := countLess8AVX2(&b8, pivot); got != want8 {
			t.Fatalf("countLess8AVX2(%v, %d) = %d, want %d", b8, pivot, got, want8)
		}
		if HasAVX512 {
			if got := countLess16AVX512(&blk, pivot); got != want {
				t.Fatalf("countLess16AVX512(%v, %d) = %d, want %d", blk, pivot, got, want)
			}
		}
	}
}

// The AVX2 kernels must also handle unsorted blocks (mask semantics count
// every lane, not just a prefix).
func TestAsmUnsortedBlocks(t *testing.T) {
	if !HasAVX2 {
		t.Skip("no AVX2 on this machine")
	}
	blk := [16]int32{5, -3, 100, 0, 7, 7, -50, 2, 9, 1, 1 << 30, -(1 << 30), 4, 6, 8, 3}
	for _, pivot := range []int32{-100, -1, 0, 3, 7, 101, 1 << 30} {
		if got, want := countLess16AVX2(&blk, pivot), CountLess16(&blk, pivot); got != want {
			t.Errorf("unsorted AVX2: pivot %d: %d vs %d", pivot, got, want)
		}
		if HasAVX512 {
			if got, want := countLess16AVX512(&blk, pivot), CountLess16(&blk, pivot); got != want {
				t.Errorf("unsorted AVX512: pivot %d: %d vs %d", pivot, got, want)
			}
		}
	}
}
