package obsv

import (
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const goroutines, perG = 8, 10000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestShardedCounterConcurrent(t *testing.T) {
	s := NewShardedCounter(4)
	const perShard = 5000
	var wg sync.WaitGroup
	for shard := 0; shard < 4; shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for j := 0; j < perShard; j++ {
				s.Add(shard, 2)
			}
		}(shard)
	}
	wg.Wait()
	if got := s.Value(); got != 4*perShard*2 {
		t.Fatalf("sharded counter = %d, want %d", got, 4*perShard*2)
	}
	// Out-of-range shards fold into slot 0 rather than panicking.
	s.Add(99, 1)
	s.Add(-1, 1)
	if got := s.Value(); got != 4*perShard*2+2 {
		t.Fatalf("after out-of-range adds = %d", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(7)
	g.Add(3)
	g.Add(-5)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const goroutines = 4
	const perG = 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for v := int64(1); v <= perG; v++ {
				h.Observe(v)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("count = %d, want %d", got, goroutines*perG)
	}
	wantSum := int64(goroutines) * perG * (perG + 1) / 2
	if got := h.Sum(); got != wantSum {
		t.Fatalf("sum = %d, want %d", got, wantSum)
	}
	if got := h.Max(); got != perG {
		t.Fatalf("max = %d, want %d", got, perG)
	}
	// Quantiles are upper bounds exact to one power-of-two bucket: the true
	// median of uniform 1..1000 is 500 (bucket [512,1023]); the estimate
	// must be within that bucket and never exceed the observed max.
	p50 := h.Quantile(0.5)
	if p50 < 500 || p50 > 1000 {
		t.Errorf("p50 = %d, want within [500, 1000]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < p50 || p99 > 1000 {
		t.Errorf("p99 = %d, want within [p50, 1000]", p99)
	}
	if h.Quantile(0) > h.Quantile(1) {
		t.Errorf("q0 %d > q1 %d", h.Quantile(0), h.Quantile(1))
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	h.Observe(0)
	h.Observe(-5) // clamped into the zero bucket
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("all-zero p50 = %d", got)
	}
	h.Observe(1 << 40)
	if got := h.Quantile(1); got != 1<<40 {
		t.Fatalf("q1 = %d, want %d (capped at max)", got, int64(1)<<40)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := New()
	c1 := r.Counter("a")
	c2 := r.Counter("a")
	if c1 != c2 {
		t.Fatal("same name should return the same counter")
	}
	c1.Add(3)
	r.Gauge("g").Set(9)
	r.Histogram("h").Observe(100)
	r.Sharded("s", 2).Add(1, 7)

	snap := r.Snapshot()
	if snap["a"].(int64) != 3 {
		t.Errorf("snapshot a = %v", snap["a"])
	}
	if snap["g"].(int64) != 9 {
		t.Errorf("snapshot g = %v", snap["g"])
	}
	if snap["s"].(int64) != 7 {
		t.Errorf("snapshot s = %v", snap["s"])
	}
	hs := snap["h"].(HistogramSnapshot)
	if hs.Count != 1 || hs.Sum != 100 {
		t.Errorf("snapshot h = %+v", hs)
	}
	want := []string{"a", "g", "h", "s"}
	names := r.Names()
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestRegistryConcurrentRegistration(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("shared").Inc()
				r.Histogram("lat").Observe(int64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 800 {
		t.Fatalf("shared = %d, want 800", got)
	}
	if got := r.Histogram("lat").Count(); got != 800 {
		t.Fatalf("lat count = %d, want 800", got)
	}
}

func TestNilAndNopSafety(t *testing.T) {
	// Every instrument must be a no-op when nil — this is what makes
	// instrumented code branch-free beyond the nil checks.
	var c *Counter
	c.Add(1)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	var g *Gauge
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge value")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram")
	}
	if (h.Snapshot() != HistogramSnapshot{}) {
		t.Fatal("nil histogram snapshot")
	}
	var s *ShardedCounter
	s.Add(0, 1)
	if s.Value() != 0 {
		t.Fatal("nil sharded counter")
	}
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x").Observe(1)
	r.Sharded("x", 2).Add(0, 1)
	if len(r.Snapshot()) != 0 || r.Names() != nil || r.Enabled() {
		t.Fatal("nil registry should be inert")
	}

	nop := NewNop()
	nop.Counter("x").Inc()
	if nop.Enabled() || len(nop.Snapshot()) != 0 {
		t.Fatal("nop registry should be inert")
	}
}

func TestDefaultRegistryIsLive(t *testing.T) {
	d := Default()
	if !d.Enabled() {
		t.Fatal("default registry must be enabled")
	}
	before := d.Counter("obsv_test.probe").Value()
	d.Counter("obsv_test.probe").Inc()
	if d.Counter("obsv_test.probe").Value() != before+1 {
		t.Fatal("default registry did not record")
	}
}
