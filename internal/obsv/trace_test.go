package obsv

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestTracerSpansAndSchema(t *testing.T) {
	tr := NewTracer()
	tr.SetProcessName("ppscan")
	tr.SetThreadName(0, "coordinator")
	tr.SetThreadName(1, "worker-0")

	sp := tr.Begin("similarity-pruning", 0)
	time.Sleep(time.Millisecond)
	inner := tr.BeginCat("task", "sched", 1)
	inner.EndArgs(map[string]any{"beg": 0, "end": 10, "deg": 42})
	sp.End()
	tr.Instant("barrier", 0, nil)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}

	// The output must be a valid trace_event file: a traceEvents array of
	// objects each carrying name/ph/pid/tid, with ts+dur on "X" events.
	var f struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if f.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", f.DisplayTimeUnit)
	}
	var complete, meta, instant int
	for _, e := range f.TraceEvents {
		for _, field := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := e[field]; !ok {
				t.Fatalf("event missing %q: %v", field, e)
			}
		}
		switch e["ph"] {
		case "X":
			complete++
			if _, ok := e["ts"]; !ok {
				t.Errorf("complete event missing ts: %v", e)
			}
			if d, ok := e["dur"].(float64); !ok || d < 0 {
				t.Errorf("complete event bad dur: %v", e)
			}
		case "M":
			meta++
			args := e["args"].(map[string]any)
			if _, ok := args["name"]; !ok {
				t.Errorf("metadata event missing args.name: %v", e)
			}
		case "i":
			instant++
			if e["s"] != "t" {
				t.Errorf("instant event missing scope: %v", e)
			}
		}
	}
	if complete != 2 || meta != 3 || instant != 1 {
		t.Fatalf("events: %d complete, %d meta, %d instant", complete, meta, instant)
	}

	// The outer phase span must contain the inner task span in time.
	events := tr.Events()
	var phase, task *TraceEvent
	for i := range events {
		switch events[i].Name {
		case "similarity-pruning":
			phase = &events[i]
		case "task":
			task = &events[i]
		}
	}
	if phase == nil || task == nil {
		t.Fatal("phase or task span missing")
	}
	if task.TS < phase.TS || task.TS+task.Dur > phase.TS+phase.Dur+1 {
		t.Errorf("task [%f,+%f] not inside phase [%f,+%f]",
			task.TS, task.Dur, phase.TS, phase.Dur)
	}
	if phase.Dur < 900 { // slept 1ms inside the span; dur is microseconds
		t.Errorf("phase dur = %fus, want >= 900us", phase.Dur)
	}
	if task.Args["deg"].(int) != 42 {
		t.Errorf("task args = %v", task.Args)
	}
}

func TestTracerConcurrentSpans(t *testing.T) {
	tr := NewTracer()
	const goroutines, perG = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tr.Begin("t", w).End()
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Len(); got != goroutines*perG {
		t.Fatalf("events = %d, want %d", got, goroutines*perG)
	}
}

func TestNilTracer(t *testing.T) {
	var tr *Tracer
	sp := tr.Begin("x", 0)
	sp.End()
	sp.EndArgs(map[string]any{"k": 1})
	tr.Instant("x", 0, nil)
	tr.SetThreadName(0, "x")
	tr.SetProcessName("x")
	if tr.Events() != nil || tr.Len() != 0 {
		t.Fatal("nil tracer should record nothing")
	}
}

func TestTracerEndTaskExportsArgs(t *testing.T) {
	tr := NewTracer()
	sp := tr.BeginCat("task", "sched", 3)
	sp.EndTask(16, 128, 4096)
	events := tr.Events()
	var task *TraceEvent
	for i := range events {
		if events[i].Name == "task" {
			task = &events[i]
		}
	}
	if task == nil {
		t.Fatal("task span missing")
	}
	if task.Args["beg"].(int32) != 16 || task.Args["end"].(int32) != 128 || task.Args["deg"].(int64) != 4096 {
		t.Errorf("task args = %v", task.Args)
	}
	if task.Cat != "sched" || task.TID != 3 {
		t.Errorf("task cat/tid = %q/%d", task.Cat, task.TID)
	}
}

func TestTracerResetKeepsNamesAndCapacity(t *testing.T) {
	tr := NewTracer()
	tr.SetProcessName("ppscan")
	tr.SetThreadName(0, "coordinator")
	tr.NameWorkers(4)
	tr.Begin("warm", 0).End()
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatalf("Len after Reset = %d", tr.Len())
	}

	// Names survive Reset and renaming to the same value is idempotent.
	tr.NameWorkers(4)
	tr.SetProcessName("ppscan")
	tr.SetThreadName(0, "coordinator")
	var names []string
	for _, e := range tr.Events() {
		if e.Ph == "M" {
			names = append(names, e.Args["name"].(string))
		}
	}
	want := []string{"ppscan", "coordinator", "worker-0", "worker-1", "worker-2", "worker-3"}
	if len(names) != len(want) {
		t.Fatalf("metadata names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("metadata names = %v, want %v", names, want)
		}
	}

	// The steady-state cycle of a pooled tracer — Reset, re-assert names,
	// record as many spans as the previous run — must be allocation-free.
	tr.Reset()
	for i := 0; i < 64; i++ {
		tr.Begin("span", 1).EndTask(0, 10, 100)
	}
	allocs := testing.AllocsPerRun(10, func() {
		tr.Reset()
		tr.SetProcessName("ppscan")
		tr.SetThreadName(0, "coordinator")
		tr.NameWorkers(4)
		for i := 0; i < 64; i++ {
			tr.Begin("span", 1).EndTask(0, 10, 100)
		}
	})
	if allocs != 0 {
		t.Errorf("pooled tracer cycle allocates %.1f per run, want 0", allocs)
	}
}

func TestEmptyTracerWritesValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := NewTracer().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var f map[string]any
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	if _, ok := f["traceEvents"].([]any); !ok {
		t.Fatalf("traceEvents missing or not an array: %s", buf.String())
	}
}
