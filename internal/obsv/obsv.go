// Package obsv is the runtime observability layer: a lock-free metrics
// registry (atomic counters, gauges, per-worker sharded counters and
// streaming log-bucketed histograms) plus a lightweight span tracer that
// exports Chrome trace_event JSON (see trace.go).
//
// Design rules, in order of importance:
//
//  1. Hot paths pay only atomics — registration (the only locked
//     operation) happens once per metric; callers cache the returned
//     instrument pointer and never touch the registry map again.
//  2. Everything is nil-safe. A nil *Counter, *Gauge, *Histogram,
//     *ShardedCounter, *Registry or *Tracer is a valid no-op instrument,
//     so instrumented code needs no "is observability on?" branches
//     beyond the ones the compiler already emits for the nil check. The
//     no-op registry (NewNop) hands out nil instruments, which is how the
//     overhead benchmark compares instrumented vs. uninstrumented runs.
//  3. Snapshots are JSON-ready: Registry.Snapshot returns plain maps and
//     integers suitable for an expvar-style /metrics endpoint.
//
// The process-global Default registry accumulates cross-run totals (per
// clustering-phase wall time, kernel counters, scheduler telemetry); a
// server or test that wants isolated numbers creates its own with New.
package obsv

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (e.g. in-flight requests, cache
// size). A nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores v as the current value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta (negative to decrement).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// shardedSlot is one per-worker counter slot, padded to its own cache line
// so concurrent workers never contend on a shared line.
type shardedSlot struct {
	v atomic.Int64
	_ [7]int64
}

// ShardedCounter is a counter split into per-worker slots: each worker adds
// to its own cache line and Value folds the slots, the same layout the
// paper's per-thread counters use. A nil *ShardedCounter is a no-op.
type ShardedCounter struct {
	slots []shardedSlot
}

// NewShardedCounter returns a counter with shards slots (minimum 1).
func NewShardedCounter(shards int) *ShardedCounter {
	if shards < 1 {
		shards = 1
	}
	return &ShardedCounter{slots: make([]shardedSlot, shards)}
}

// Add adds n to the slot for shard (wrapped into range).
func (s *ShardedCounter) Add(shard int, n int64) {
	if s == nil {
		return
	}
	if shard < 0 || shard >= len(s.slots) {
		shard = 0
	}
	s.slots[shard].v.Add(n)
}

// Value returns the sum over all slots.
func (s *ShardedCounter) Value() int64 {
	if s == nil {
		return 0
	}
	var sum int64
	for i := range s.slots {
		sum += s.slots[i].v.Load()
	}
	return sum
}

// histBuckets is the bucket count of the streaming histogram: bucket i
// holds values v with bits.Len64(v) == i, i.e. power-of-two ranges
// [2^(i-1), 2^i). 64 buckets cover the whole non-negative int64 range,
// which fits nanosecond latencies and degree sums alike.
const histBuckets = 65

// Histogram is a streaming log-bucketed histogram with atomic buckets.
// Observe is wait-free; quantile estimates are exact to within one
// power-of-two bucket, which is plenty for latency percentiles on a
// /metrics page. A nil *Histogram is a no-op.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// bucketOf maps a value to its bucket index; negative values clamp to 0.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of observed samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed samples.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the largest observed sample (0 when empty).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Quantile returns an upper-bound estimate of the q-quantile (0 ≤ q ≤ 1):
// the upper edge of the first bucket whose cumulative count reaches
// q·total. Exact to within one power-of-two bucket.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target sample, 1-based.
	rank := int64(q*float64(total-1)) + 1
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			if i == 0 {
				return 0
			}
			upper := int64(1)<<uint(i) - 1
			if m := h.max.Load(); upper > m {
				upper = m // never report beyond the observed max
			}
			return upper
		}
	}
	return h.max.Load()
}

// HistogramSnapshot is the JSON-ready summary of a histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
	Max   int64   `json:"max"`
}

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	return HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}

// Registry is a named collection of instruments. Lookup-or-create takes a
// mutex; the returned instruments are lock-free, so callers fetch once and
// use forever. A nil *Registry (or one from NewNop) hands out nil no-op
// instruments.
type Registry struct {
	nop bool

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	sharded  map[string]*ShardedCounter
}

// New returns an empty live registry.
func New() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		sharded:  map[string]*ShardedCounter{},
	}
}

// NewNop returns a registry whose getters hand out nil (no-op)
// instruments; Snapshot returns an empty map. Use it to turn
// instrumentation off entirely (the overhead-benchmark baseline).
func NewNop() *Registry { return &Registry{nop: true} }

var defaultRegistry = New()

// Default returns the process-global registry. Algorithm runs record their
// per-phase and kernel totals here unless given a private registry.
func Default() *Registry { return defaultRegistry }

// Enabled reports whether the registry records anything.
func (r *Registry) Enabled() bool { return r != nil && !r.nop }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if !r.Enabled() {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if !r.Enabled() {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if !r.Enabled() {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Sharded returns the named sharded counter, creating it with shards slots
// on first use (an existing counter keeps its original shard count).
func (r *Registry) Sharded(name string, shards int) *ShardedCounter {
	if !r.Enabled() {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.sharded[name]
	if s == nil {
		s = NewShardedCounter(shards)
		r.sharded[name] = s
	}
	return s
}

// Snapshot returns a JSON-ready view of every instrument: counters,
// gauges and sharded counters as integers, histograms as summary objects.
// Keys are the metric names (encoding/json emits them sorted).
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	if !r.Enabled() {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, s := range r.sharded {
		out[name] = s.Value()
	}
	for name, h := range r.hists {
		out[name] = h.Snapshot()
	}
	return out
}

// Names returns the sorted metric names currently registered.
func (r *Registry) Names() []string {
	if !r.Enabled() {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists)+len(r.sharded))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	for n := range r.sharded {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
