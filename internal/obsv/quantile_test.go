package obsv

import (
	"sync"
	"testing"
)

// TestQuantileSingleSample: with one sample the histogram knows the exact
// max, so every quantile must report the sample itself (the bucket upper
// edge clamps to the observed max).
func TestQuantileSingleSample(t *testing.T) {
	for _, v := range []int64{1, 2, 3, 5, 1023, 1024, 1 << 40} {
		var h Histogram
		h.Observe(v)
		for _, q := range []float64{0, 0.5, 0.99, 1} {
			if got := h.Quantile(q); got != v {
				t.Errorf("Observe(%d).Quantile(%g) = %d, want %d", v, q, got, v)
			}
		}
	}
}

// TestQuantileExactPowersOfTwo pins the bucket-edge behavior: 2^k is the
// first value of bucket k+1, whose upper edge 2^(k+1)-1 clamps back to
// the observed max when 2^k is the largest sample.
func TestQuantileExactPowersOfTwo(t *testing.T) {
	for k := uint(0); k < 62; k++ {
		v := int64(1) << k
		var h Histogram
		h.Observe(v)
		if got := h.Quantile(1); got != v {
			t.Fatalf("Quantile(1) after Observe(1<<%d) = %d, want %d", k, got, v)
		}
		// A second, smaller sample in a lower bucket: the median must not
		// exceed that bucket's upper edge.
		if k >= 2 {
			lo := int64(1) << (k - 2)
			h.Observe(lo)
			p0 := h.Quantile(0)
			if upper := int64(1)<<(k-1) - 1; p0 > upper {
				t.Fatalf("Quantile(0) = %d exceeds lower bucket edge %d", p0, upper)
			}
		}
	}
}

func TestQuantileExtremesAndClamping(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(1)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000)
	}
	if got := h.Quantile(0.5); got != 1 {
		t.Errorf("p50 = %d, want 1", got)
	}
	if got := h.Quantile(0.99); got != 1000 {
		t.Errorf("p99 = %d, want 1000 (bucket edge clamped to max)", got)
	}
	// Out-of-range q clamps to [0, 1] rather than misbehaving.
	if got, want := h.Quantile(-3), h.Quantile(0); got != want {
		t.Errorf("Quantile(-3) = %d, want Quantile(0) = %d", got, want)
	}
	if got, want := h.Quantile(7), h.Quantile(1); got != want {
		t.Errorf("Quantile(7) = %d, want Quantile(1) = %d", got, want)
	}
}

// TestQuantileNegativeClamp: negative samples land in bucket 0 and report
// as 0 — durations cannot be negative, so clock skew must not poison the
// distribution.
func TestQuantileNegativeClamp(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	h.Observe(-1)
	h.Observe(0)
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("Quantile(%g) = %d, want 0", q, got)
		}
	}
	if h.Count() != 3 {
		t.Errorf("Count = %d, want 3", h.Count())
	}
}

func TestQuantileEmptyAndNil(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %d, want 0", got)
	}
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil Quantile = %d, want 0", got)
	}
	if s := nilH.Snapshot(); s.Count != 0 || s.P99 != 0 {
		t.Errorf("nil Snapshot = %+v", s)
	}
}

// TestHistogramConcurrentObserveSnapshot exercises Observe racing
// Snapshot/Quantile — run under -race this proves the lock-free histogram
// is data-race-free, and the final counts must still be exact.
func TestHistogramConcurrentObserveSnapshot(t *testing.T) {
	var h Histogram
	const goroutines, perG = 8, 5000
	var writers, reader sync.WaitGroup
	stop := make(chan struct{})
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			if s.Count < 0 || s.P50 < 0 || s.Max < 0 {
				t.Error("negative snapshot fields")
				return
			}
			_ = h.Quantile(0.9)
		}
	}()
	for w := 0; w < goroutines; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < perG; i++ {
				h.Observe(int64(w*perG + i))
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	reader.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("Count = %d, want %d", got, goroutines*perG)
	}
	if got := h.Max(); got != goroutines*perG-1 {
		t.Fatalf("Max = %d, want %d", got, goroutines*perG-1)
	}
}
