package obsv

// Canonical metric names, shared by the recorders (internal/core,
// internal/sched via core, internal/server) and the readers (/metrics,
// ppscan -stats-json, experiments -metrics) so the same key always means
// the same quantity.
//
// Mapping to the paper's evaluation:
//
//   - MetricPhaseNsPrefix + <stage>   — Figure 6's per-stage wall time
//   - MetricCompSimCalls[.<stage>]    — Figure 4's similarity-computation
//     counts (and their stage decomposition)
//   - the kernel.* counters           — Figure 5's vectorized-vs-scalar
//     kernel work and Definition 3.9's early-termination effectiveness
//   - the sched.* metrics             — §4.4's scheduling overhead claim
const (
	// MetricCoreRuns counts completed ppSCAN runs.
	MetricCoreRuns = "core.runs"
	// MetricCoreCancels counts ppSCAN runs aborted by context cancellation
	// or deadline expiry (each such run returns a result.PartialError).
	MetricCoreCancels = "core.cancels"
	// MetricPhaseNsPrefix + stage name accumulates per-stage wall time in
	// nanoseconds (stages are result.PhaseNames).
	MetricPhaseNsPrefix = "core.phase_ns."
	// MetricCompSimCalls accumulates similarity computations; with the
	// MetricCompSimPrefix it decomposes per stage.
	MetricCompSimCalls  = "core.compsim_calls"
	MetricCompSimPrefix = "core.compsim_calls."

	// Kernel counters (summed over per-worker intersect.Stats).
	MetricKernelCalls        = "kernel.calls"
	MetricKernelSim          = "kernel.sim"
	MetricKernelNSim         = "kernel.nsim"
	MetricKernelPrunedSim    = "kernel.pruned_sim"
	MetricKernelPrunedNSim   = "kernel.pruned_nsim"
	MetricKernelEarlyDu      = "kernel.early_du"
	MetricKernelEarlyDv      = "kernel.early_dv"
	MetricKernelVectorBlocks = "kernel.vector_blocks"
	MetricKernelScalarSteps  = "kernel.scalar_steps"
	MetricKernelScanned      = "kernel.elements_scanned"

	// Scheduler telemetry.
	MetricSchedTasks         = "sched.tasks_submitted"
	MetricSchedTaskDegreeSum = "sched.task_degree_sum"
	MetricSchedTaskVertices  = "sched.task_vertices"
	MetricSchedQueueWaitNs   = "sched.queue_wait_ns"
	MetricSchedWorkerBusyNs  = "sched.worker_busy_ns"

	// HTTP server metrics (per-endpoint names append "." + endpoint).
	MetricHTTPRequestsPrefix = "http.requests."
	MetricHTTPErrorsPrefix   = "http.errors."
	MetricHTTPLatencyPrefix  = "http.latency_ns."
	MetricHTTPInFlight       = "http.in_flight"

	// Response-cache metrics.
	MetricCacheHits      = "cache.hits"
	MetricCacheMisses    = "cache.misses"
	MetricCacheEvictions = "cache.evictions"
	MetricCacheSize      = "cache.size"

	// Admission-control metrics (server-local, like http.* and cache.*).
	//
	// MetricAdmissionRejected counts requests rejected with 429 because the
	// in-flight job semaphore was saturated and no degradation path
	// (cache entry or index) was available.
	MetricAdmissionRejected = "admission.rejected"
	// MetricAdmissionTimeouts counts computations aborted by the
	// per-request deadline (-request-timeout) and answered with 503.
	MetricAdmissionTimeouts = "admission.timeouts"
	// MetricAdmissionCanceled counts computations aborted because the
	// client disconnected before completion.
	MetricAdmissionCanceled = "admission.canceled"
	// MetricAdmissionDegradedCache counts saturated requests answered from
	// the LRU response cache instead of being admitted for computation.
	MetricAdmissionDegradedCache = "admission.degraded_cache"
	// MetricAdmissionDegradedIndex counts saturated requests answered from
	// the attached GS*-Index without holding an admission slot.
	MetricAdmissionDegradedIndex = "admission.degraded_index"
	// MetricAdmissionInFlight gauges clustering computations currently
	// holding an admission slot (compute jobs, not HTTP requests —
	// compare http.in_flight).
	MetricAdmissionInFlight = "admission.jobs_in_flight"

	// Workspace-pool metrics (server-local, reported from engine.Pool.Stats
	// in /metrics rather than recorded through registry instruments).
	//
	// MetricWorkspaceHits / MetricWorkspaceMisses count Acquire calls served
	// from a pooled workspace vs. ones that had to allocate a fresh one.
	MetricWorkspaceHits   = "workspace.pool.hits"
	MetricWorkspaceMisses = "workspace.pool.misses"
	// MetricWorkspaceDiscards counts workspaces dropped at Release because
	// the pool was at capacity (their buffers return to the GC).
	MetricWorkspaceDiscards = "workspace.pool.discards"
	// MetricWorkspaceRetained gauges idle workspaces currently pooled;
	// MetricWorkspaceRetainedBytes is the scratch memory they pin.
	MetricWorkspaceRetained      = "workspace.pool.retained"
	MetricWorkspaceRetainedBytes = "workspace.pool.retained_bytes"
	// MetricWorkspaceCapacity reports the pool's retention bound.
	MetricWorkspaceCapacity = "workspace.pool.capacity"

	// Process/runtime gauges reported by the server's /metrics handler
	// (computed at read time from runtime.MemStats etc., not recorded
	// through registry instruments).
	MetricRuntimeGoroutines = "runtime.goroutines"
	MetricRuntimeHeapAlloc  = "runtime.heap_alloc_bytes"
	MetricRuntimeNumGC      = "runtime.num_gc"

	// Graph shape gauges for the served graph.
	MetricGraphVertices = "graph.vertices"
	MetricGraphEdges    = "graph.edges"

	// Server lifecycle gauges.
	MetricServerIndexed  = "server.indexed"
	MetricServerUptimeNs = "server.uptime_ns"
	MetricServerDraining = "server.draining"

	// Admission configuration, echoed so dashboards can normalize the
	// admission.* counters against the configured limits.
	MetricAdmissionMaxInflight      = "admission.max_inflight"
	MetricAdmissionRequestTimeoutNs = "admission.request_timeout_ns"

	// Fault-containment metrics.
	//
	// MetricCorePanics counts ppSCAN runs aborted by a contained worker
	// panic (each such run returns a result.PartialError wrapping a
	// *result.WorkerPanicError).
	MetricCorePanics = "core.worker_panics"
	// MetricServerPanics counts panics the server contained — recovered
	// worker panics surfacing as engine errors plus panics caught by the
	// handler-level recovery — each answered with HTTP 500 instead of
	// process death.
	MetricServerPanics = "server.panics"
	// MetricServerStalls counts requests answered 500 because the phase
	// watchdog (Server.WithWatchdog) abandoned the computation.
	MetricServerStalls = "server.stalls"
	// MetricServerWatchdogNs reports the configured stall timeout (0 =
	// watchdog disabled).
	MetricServerWatchdogNs = "server.watchdog_ns"
	// MetricWatchdogStalls counts phases or supersteps aborted by the
	// stall watchdog (no scheduler progress within -watchdog).
	MetricWatchdogStalls = "watchdog.stalls"
	// MetricWorkspaceResets counts poisoned workspaces rebuilt by the
	// pool after a contained failure, before reuse.
	MetricWorkspaceResets = "workspace.pool.resets"

	// Fault-injection counters (reported from fault.Snapshot in /metrics;
	// all zero unless -chaos-seed armed a plan).
	MetricFaultPanics  = "fault.injected.panics"
	MetricFaultDelays  = "fault.injected.delays"
	MetricFaultErrors  = "fault.injected.errors"
	MetricFaultRetries = "fault.retries"

	// Tail-latency attribution histograms.
	//
	// MetricPhaseDurPrefix + stage name is a histogram of single-run
	// per-stage wall times in nanoseconds — the distribution behind the
	// MetricPhaseNsPrefix accumulators, so quantiles answer "which stage
	// makes the slow runs slow" (stages are result.PhaseNames).
	MetricPhaseDurPrefix = "core.phase_dur_ns."
	// MetricSchedTaskSpanNs is a histogram of individual scheduler-task
	// wall times (queue wait excluded) across both pool flavors; its tail
	// quantifies Algorithm 5's load-balance quality.
	MetricSchedTaskSpanNs = "sched.task_span_ns"
	// MetricEngineRunPrefix + engine name is a histogram of end-to-end
	// RunWorkspace wall times per engine, recorded at the facade dispatch.
	MetricEngineRunPrefix = "engine.run_ns."

	// Server-side tail-latency attribution (server-local registry).
	//
	// MetricServerComputeNs is a histogram of direct-compute durations
	// (cache misses that ran the algorithm); MetricServerPhasePrefix +
	// stage name distributes each computation's per-stage time.
	MetricServerComputeNs   = "server.compute_ns"
	MetricServerPhasePrefix = "server.phase_ns."
	// MetricServerExemplars gauges the exemplars currently retained in the
	// slowest-request ring; MetricServerExemplarCaptures counts requests
	// that qualified for retention since startup.
	MetricServerExemplars        = "server.exemplars.retained"
	MetricServerExemplarCaptures = "server.exemplars.captured"

	// Distributed-engine superstep histograms: MetricDistSuperstepPrefix +
	// a superstep key ("s1_adjacency_exchange", ...) distributes wall time
	// per BSP superstep, retries included.
	MetricDistSuperstepPrefix = "distscan.superstep_ns."

	// Request-coalescing metrics (server-local; see Server.WithCoalescing).
	//
	// MetricServerCoalesceFlights counts shared similarity passes started —
	// one per single-flight group, however many requests share it.
	MetricServerCoalesceFlights = "server.coalesce.flights"
	// MetricServerCoalesceHits counts requests that joined an already-open
	// flight instead of starting their own similarity pass; flights + hits
	// is the total coalesced request count.
	MetricServerCoalesceHits = "server.coalesce.hits"
	// MetricServerCoalesceCancels counts flights whose shared pass was
	// cancelled because the last waiter left before it finished.
	MetricServerCoalesceCancels = "server.coalesce.cancels"
	// MetricServerCoalesceFanout is a histogram of waiters per completed
	// flight — the amortization factor coalescing achieved.
	MetricServerCoalesceFanout = "server.coalesce.fanout"
	// MetricServerCoalesceBuildNs is a histogram of shared similarity-pass
	// (index build) durations.
	MetricServerCoalesceBuildNs = "server.coalesce.build_ns"

	// Mutation metrics (server-local; see POST /edges and -mutations).
	//
	// MetricGraphEpoch reports the current snapshot epoch — 0 at startup,
	// incremented by every effective POST /edges batch. Static servers
	// stay at 0 forever.
	MetricGraphEpoch = "graph.epoch"
	// MetricGraphSnapshotsLive reports how many snapshot epochs the store
	// still tracks (the current one plus superseded snapshots pinned by
	// readers); absent when mutations are disabled.
	MetricGraphSnapshotsLive = "graph.snapshots_live"
	// MetricCacheInvalidations counts response-cache entries purged
	// because a mutation advanced the epoch past theirs.
	MetricCacheInvalidations = "server.cache.invalidations"
	// MetricServerMutationBatches counts effective POST /edges commits
	// (no-op batches excluded); MetricServerMutationEdges accumulates the
	// edges they added plus removed.
	MetricServerMutationBatches = "server.mutations.batches"
	MetricServerMutationEdges   = "server.mutations.edges"
	// MetricServerMutationCommitNs distributes graph.Store commit
	// durations; MetricServerMutationUpdateNs distributes incremental
	// index-maintenance durations (indexed servers only).
	MetricServerMutationCommitNs = "server.mutations.commit_ns"
	MetricServerMutationUpdateNs = "server.mutations.update_ns"
	// MetricServerMutationRebuilds counts mutations whose incremental
	// index update failed and fell back to a from-scratch rebuild.
	MetricServerMutationRebuilds = "server.mutations.rebuilds"

	// Sweep-endpoint metrics (server-local; see GET /cluster/sweep).
	//
	// MetricServerSweepSteps counts ε steps streamed across all sweep
	// requests; MetricServerSweepStepNs distributes per-step extraction
	// time (similarities are never recomputed per step).
	MetricServerSweepSteps  = "server.sweep.steps"
	MetricServerSweepStepNs = "server.sweep.step_ns"
	// MetricServerSweepBuilds counts similarity passes performed for sweep
	// requests that had neither an attached index nor a coalescer to share
	// one with.
	MetricServerSweepBuilds = "server.sweep.builds"
	// MetricServerSweepDisconnects counts sweeps abandoned mid-stream
	// because the client went away or the request deadline expired.
	MetricServerSweepDisconnects = "server.sweep.disconnects"
	// MetricServerSweepMaxSteps echoes the configured per-request step
	// bound (-sweep-max-steps) so dashboards can normalize step counts.
	MetricServerSweepMaxSteps = "server.sweep.max_steps"

	// Shard-tier metrics (internal/shard): the coordinator records the
	// shard.* family into the registry it is constructed with (scanserver
	// passes the process-global registry so /metrics surfaces the fleet);
	// workers record the shard.worker.* family into their own registry,
	// surfaced by the worker's /shard/healthz body.
	//
	// MetricShardRPCs counts shard RPC attempts issued by the coordinator
	// (retries and failovers included); MetricShardRPCNs distributes their
	// wall time, failures included.
	MetricShardRPCs  = "shard.rpcs"
	MetricShardRPCNs = "shard.rpc_ns"
	// MetricShardRetries counts RPC attempts beyond each call's first;
	// MetricShardFailovers counts attempts that moved to a different
	// replica after a failure.
	MetricShardRetries   = "shard.retries"
	MetricShardFailovers = "shard.failovers"
	// Typed-failure counters, one per taxonomy class: per-RPC deadline
	// expiries (ShardTimeoutError), severed connections or dead processes
	// (ShardCrashError), and non-200 worker responses (ShardRejectedError).
	MetricShardTimeouts = "shard.timeouts"
	MetricShardCrashes  = "shard.crashes"
	MetricShardRejected = "shard.rejected"
	// MetricShardHeartbeats counts heartbeat probes sent;
	// MetricShardRejoins counts replicas that returned to healthy from
	// suspect or dead; MetricShardSyncs counts epoch catch-up snapshot
	// pushes to stale or rejoined workers.
	MetricShardHeartbeats = "shard.heartbeats"
	MetricShardRejoins    = "shard.rejoins"
	MetricShardSyncs      = "shard.syncs"
	// Fleet-state gauges: replicas currently in each health state.
	MetricShardHealthy = "shard.replicas_healthy"
	MetricShardSuspect = "shard.replicas_suspect"
	MetricShardDead    = "shard.replicas_dead"
	// MetricShardQueries counts coordinator-run sharded queries;
	// MetricShardUnavailable counts queries abandoned because some shard
	// had no replica left to serve a round (surfaced as 503 + Retry-After).
	MetricShardQueries     = "shard.queries"
	MetricShardUnavailable = "shard.unavailable"
	// MetricShardCommBytes accumulates real wire bytes moved between the
	// coordinator and the workers (request plus response bodies) — the
	// multi-process measurement of the paper's §3.3 communication-overhead
	// claim, replacing distscan's modeled byte counts.
	MetricShardCommBytes = "shard.comm_bytes"
	// MetricShardRoundNsPrefix + round name ("sim", "roles", "cluster",
	// "members") distributes per-round wall time across the fleet barrier,
	// retries and failovers included.
	MetricShardRoundNsPrefix = "shard.round_ns."

	// Worker-side shard metrics (recorded into the worker's own registry).
	//
	// MetricShardWorkerSteps counts superstep RPCs served;
	// MetricShardWorkerStateHits / Misses count step requests answered from
	// cached per-query state vs. ones that recomputed it (a restarted
	// worker always misses — the self-contained round inputs make that
	// correct, just slower); MetricShardWorkerSyncs counts epoch catch-up
	// snapshots accepted via /shard/sync.
	MetricShardWorkerSteps       = "shard.worker.steps"
	MetricShardWorkerStateHits   = "shard.worker.state_hits"
	MetricShardWorkerStateMisses = "shard.worker.state_misses"
	MetricShardWorkerSyncs       = "shard.worker.syncs"
)
