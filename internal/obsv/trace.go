// Span tracer with Chrome trace_event JSON export.
//
// A Tracer records named spans (phases, scheduler tasks, requests) on
// numbered tracks ("tids"); WriteJSON emits the run as the Trace Event
// Format understood by chrome://tracing and https://ui.perfetto.dev — one
// complete ("ph":"X") event per span plus thread-name metadata, so a
// ppSCAN run renders as a coordinator track with the seven phases and one
// track per worker with its scheduler tasks.
//
// Begin is allocation-free and lock-free (the span start is captured on
// the caller's stack); End appends the finished event under a mutex. Spans
// are millisecond-scale (phases, tasks, HTTP requests), so the mutex is
// never contended enough to matter, and a nil *Tracer makes both
// operations no-ops.
package obsv

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// TraceEvent is one Chrome trace_event record. Ph "X" is a complete event
// (span), "i" an instant, "M" metadata (thread/process names). Timestamps
// and durations are microseconds, as the format requires.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
	// Scope is required for instant events ("g" = global).
	Scope string `json:"s,omitempty"`
}

// traceFile is the top-level JSON object Perfetto and chrome://tracing
// both accept.
type traceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// Tracer records spans relative to its creation time. A nil *Tracer is a
// no-op (zero allocation, zero time syscalls on Begin-without-End paths
// are not possible — Begin itself is the only time capture).
type Tracer struct {
	start time.Time

	mu     sync.Mutex
	events []TraceEvent
}

// NewTracer returns a tracer whose time origin is now.
func NewTracer() *Tracer {
	return &Tracer{start: time.Now()}
}

// Span is an in-flight interval started by Begin. The zero Span (from a
// nil tracer) is a no-op.
type Span struct {
	t     *Tracer
	name  string
	cat   string
	tid   int
	start time.Time
}

// Begin opens a span named name on track tid. Call End (or EndArgs) on the
// returned Span to record it; an unclosed span records nothing.
func (t *Tracer) Begin(name string, tid int) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, tid: tid, start: time.Now()}
}

// BeginCat is Begin with a category label (Perfetto groups by category).
func (t *Tracer) BeginCat(name, cat string, tid int) Span {
	s := t.Begin(name, tid)
	s.cat = cat
	return s
}

// End records the span with no arguments.
func (s Span) End() { s.EndArgs(nil) }

// EndArgs records the span with the given args payload.
func (s Span) EndArgs(args map[string]any) {
	if s.t == nil {
		return
	}
	end := time.Now()
	s.t.append(TraceEvent{
		Name: s.name,
		Cat:  s.cat,
		Ph:   "X",
		TS:   micros(s.start.Sub(s.t.start)),
		Dur:  micros(end.Sub(s.start)),
		PID:  1,
		TID:  s.tid,
		Args: args,
	})
}

// Instant records a zero-duration marker on track tid.
func (t *Tracer) Instant(name string, tid int, args map[string]any) {
	if t == nil {
		return
	}
	t.append(TraceEvent{
		Name:  name,
		Ph:    "i",
		TS:    micros(time.Since(t.start)),
		PID:   1,
		TID:   tid,
		Args:  args,
		Scope: "t",
	})
}

// SetThreadName labels track tid in the trace viewer (e.g. "coordinator",
// "worker-3"). Idempotent per tid in practice; duplicates are harmless.
func (t *Tracer) SetThreadName(tid int, name string) {
	if t == nil {
		return
	}
	t.append(TraceEvent{
		Name: "thread_name",
		Ph:   "M",
		PID:  1,
		TID:  tid,
		Args: map[string]any{"name": name},
	})
}

// SetProcessName labels the whole trace's process row.
func (t *Tracer) SetProcessName(name string) {
	if t == nil {
		return
	}
	t.append(TraceEvent{
		Name: "process_name",
		Ph:   "M",
		PID:  1,
		Args: map[string]any{"name": name},
	})
}

func (t *Tracer) append(e TraceEvent) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Events returns a copy of the recorded events.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceEvent, len(t.events))
	copy(out, t.events)
	return out
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// WriteJSON writes the trace as a Chrome trace_event JSON object.
func (t *Tracer) WriteJSON(w io.Writer) error {
	f := traceFile{TraceEvents: t.Events(), DisplayTimeUnit: "ms"}
	if f.TraceEvents == nil {
		f.TraceEvents = []TraceEvent{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// micros converts a duration to the trace format's microsecond unit,
// keeping nanosecond precision as a fraction.
func micros(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e3
}
