// Span tracer with Chrome trace_event JSON export.
//
// A Tracer records named spans (phases, scheduler tasks, requests) on
// numbered tracks ("tids"); WriteJSON emits the run as the Trace Event
// Format understood by chrome://tracing and https://ui.perfetto.dev — one
// complete ("ph":"X") event per span plus thread-name metadata, so a
// ppSCAN run renders as a coordinator track with the seven phases and one
// track per worker with its scheduler tasks.
//
// Begin is allocation-free and lock-free (the span start is captured on
// the caller's stack); End appends the finished event under a mutex. Spans
// are millisecond-scale (phases, tasks, HTTP requests), so the mutex is
// never contended enough to matter, and a nil *Tracer makes both
// operations no-ops.
//
// Tracers are reusable: Reset truncates the recorded events while keeping
// their capacity and the track names, so a pooled tracer serves an
// unbounded number of runs without growing the heap — the property the
// server's tail-latency exemplar capture relies on to stay inside the
// serving allocation budget. Track and process names are stored as fields
// (not as recorded events) and synthesized into "M" metadata events at
// export time; setting a name to its current value is a no-op after the
// first call.
package obsv

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// TraceEvent is one Chrome trace_event record. Ph "X" is a complete event
// (span), "i" an instant, "M" metadata (thread/process names). Timestamps
// and durations are microseconds, as the format requires.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
	// Scope is required for instant events ("g" = global).
	Scope string `json:"s,omitempty"`
}

// TraceFile is the top-level JSON object Perfetto and chrome://tracing
// both accept. Exported so callers embedding a captured trace in a larger
// JSON document (the server's /debug/slowest endpoint) emit the same
// schema WriteJSON does.
type TraceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// NewTraceFile wraps already-exported events in the standard top-level
// trace object. A nil slice becomes an empty array so the output is
// always loadable.
func NewTraceFile(events []TraceEvent) *TraceFile {
	if events == nil {
		events = []TraceEvent{}
	}
	return &TraceFile{TraceEvents: events, DisplayTimeUnit: "ms"}
}

// rec is the internal event record. Scheduler-task span arguments are
// kept as plain integers (set via Span.EndTask) rather than an args map,
// so recording a task on the serving path allocates nothing; Events
// materializes the map only at export time.
type rec struct {
	ev       TraceEvent
	taskBeg  int32
	taskEnd  int32
	taskDeg  int64
	taskArgs bool
}

// Tracer records spans relative to its creation (or last Reset) time. A
// nil *Tracer is a no-op.
type Tracer struct {
	mu       sync.Mutex
	start    time.Time
	events   []rec
	procName string
	threads  map[int]string
}

// NewTracer returns a tracer whose time origin is now.
func NewTracer() *Tracer {
	return &Tracer{start: time.Now()}
}

// Reset truncates the recorded events — keeping their capacity and the
// process/track names — and moves the time origin to now. After the
// warm-up run a pooled tracer's Begin/End/EndTask cycle is
// allocation-free.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = t.events[:0]
	t.start = time.Now()
	t.mu.Unlock()
}

// Span is an in-flight interval started by Begin. The zero Span (from a
// nil tracer) is a no-op.
type Span struct {
	t     *Tracer
	name  string
	cat   string
	tid   int
	start time.Time
}

// Begin opens a span named name on track tid. Call End (or EndArgs /
// EndTask) on the returned Span to record it; an unclosed span records
// nothing.
func (t *Tracer) Begin(name string, tid int) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, tid: tid, start: time.Now()}
}

// BeginCat is Begin with a category label (Perfetto groups by category).
func (t *Tracer) BeginCat(name, cat string, tid int) Span {
	s := t.Begin(name, tid)
	s.cat = cat
	return s
}

// End records the span with no arguments.
func (s Span) End() { s.EndArgs(nil) }

// EndArgs records the span with the given args payload.
func (s Span) EndArgs(args map[string]any) {
	if s.t == nil {
		return
	}
	end := time.Now()
	s.t.append(rec{ev: TraceEvent{
		Name: s.name,
		Cat:  s.cat,
		Ph:   "X",
		TS:   micros(s.start.Sub(s.t.start)),
		Dur:  micros(end.Sub(s.start)),
		PID:  1,
		TID:  s.tid,
		Args: args,
	}})
}

// EndTask records the span with a scheduler-task payload (vertex range
// and degree sum) without allocating: the three integers ride in the
// internal record and become an args map only when the trace is exported.
// This keeps per-task tracing inside the zero-allocation serving budget.
func (s Span) EndTask(beg, end int32, deg int64) {
	if s.t == nil {
		return
	}
	now := time.Now()
	s.t.append(rec{
		ev: TraceEvent{
			Name: s.name,
			Cat:  s.cat,
			Ph:   "X",
			TS:   micros(s.start.Sub(s.t.start)),
			Dur:  micros(now.Sub(s.start)),
			PID:  1,
			TID:  s.tid,
		},
		taskBeg:  beg,
		taskEnd:  end,
		taskDeg:  deg,
		taskArgs: true,
	})
}

// Instant records a zero-duration marker on track tid.
func (t *Tracer) Instant(name string, tid int, args map[string]any) {
	if t == nil {
		return
	}
	t.append(rec{ev: TraceEvent{
		Name:  name,
		Ph:    "i",
		TS:    micros(time.Since(t.start)),
		PID:   1,
		TID:   tid,
		Args:  args,
		Scope: "t",
	}})
}

// SetThreadName labels track tid in the trace viewer (e.g. "coordinator",
// "worker-3"). Names persist across Reset; setting the name a track
// already has is a no-op, so repeated calls on a pooled tracer allocate
// nothing.
func (t *Tracer) SetThreadName(tid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.threads[tid] != name {
		if t.threads == nil {
			t.threads = make(map[int]string)
		}
		t.threads[tid] = name
	}
	t.mu.Unlock()
}

// SetProcessName labels the whole trace's process row. Persists across
// Reset; idempotent and allocation-free once set.
func (t *Tracer) SetProcessName(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.procName = name
	t.mu.Unlock()
}

// NameWorkers labels tracks 1..n as "worker-0".."worker-<n-1>" (track 0
// is conventionally the coordinator). Tracks already named keep their
// name, so after the first call on a given tracer the loop builds no
// strings — the form core uses on the serving path.
func (t *Tracer) NameWorkers(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.threads == nil {
		t.threads = make(map[int]string)
	}
	for w := 0; w < n; w++ {
		if _, ok := t.threads[1+w]; !ok {
			t.threads[1+w] = "worker-" + strconv.Itoa(w)
		}
	}
	t.mu.Unlock()
}

func (t *Tracer) append(e rec) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Events returns a copy of the recorded events: synthesized "M" metadata
// events for the process and track names first, then the spans and
// instants in recording order. Task spans recorded by EndTask get their
// args map materialized here — export is the cold path.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.events) == 0 && t.procName == "" && len(t.threads) == 0 {
		return nil
	}
	meta := make([]TraceEvent, 0, 1+len(t.threads))
	if t.procName != "" {
		meta = append(meta, TraceEvent{
			Name: "process_name",
			Ph:   "M",
			PID:  1,
			Args: map[string]any{"name": t.procName},
		})
	}
	tids := make([]int, 0, len(t.threads))
	for tid := range t.threads {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		meta = append(meta, TraceEvent{
			Name: "thread_name",
			Ph:   "M",
			PID:  1,
			TID:  tid,
			Args: map[string]any{"name": t.threads[tid]},
		})
	}
	out := make([]TraceEvent, 0, len(meta)+len(t.events))
	out = append(out, meta...)
	for i := range t.events {
		ev := t.events[i].ev
		if t.events[i].taskArgs {
			ev.Args = map[string]any{
				"beg": t.events[i].taskBeg,
				"end": t.events[i].taskEnd,
				"deg": t.events[i].taskDeg,
			}
		}
		out = append(out, ev)
	}
	return out
}

// Len returns the number of recorded span/instant events (metadata names
// are not events until export).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// WriteJSON writes the trace as a Chrome trace_event JSON object.
func (t *Tracer) WriteJSON(w io.Writer) error {
	f := NewTraceFile(t.Events())
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// micros converts a duration to the trace format's microsecond unit,
// keeping nanosecond precision as a fraction.
func micros(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e3
}
