package perfgate

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestReportRoundtrip(t *testing.T) {
	dir := t.TempDir()
	r := New(time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC), map[string]string{"quick": "true"})
	r.Add("engine.ppscan.warm_ns", 1.5e6, "ns", Lower, 0.3, 0)
	r.Add("kernel.merge.melems_per_s", 800, "Melem/s", Higher, 0.25, 0)
	path, err := r.Write(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_20260807T120000Z.json" {
		t.Fatalf("filename %s, want BENCH_20260807T120000Z.json", filepath.Base(path))
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != SchemaVersion || got.Stamp != r.Stamp {
		t.Fatalf("roundtrip lost schema/stamp: %+v", got)
	}
	if m := got.Metrics["engine.ppscan.warm_ns"]; m.Value != 1.5e6 || m.Dir != Lower || m.Tol != 0.3 {
		t.Fatalf("roundtrip lost metric: %+v", m)
	}
	if got.Config["quick"] != "true" {
		t.Fatalf("roundtrip lost config: %+v", got.Config)
	}
}

func TestLoadRejectsSchemaMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_20260101T000000Z.json")
	if err := os.WriteFile(path, []byte(`{"schema": 99, "metrics": {}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("Load accepted a schema-99 file")
	}
}

func TestLoadLatest(t *testing.T) {
	dir := t.TempDir()
	if r, p, err := LoadLatest(dir, CurrentHost(), false); err != nil || r != nil || p != "" {
		t.Fatalf("empty dir: got (%v, %q, %v), want (nil, \"\", nil)", r, p, err)
	}
	old := New(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC), nil)
	old.Add("m", 1, "ns", Lower, 0.1, 0)
	newer := New(time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC), nil)
	newer.Add("m", 2, "ns", Lower, 0.1, 0)
	foreign := New(time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC), nil)
	foreign.Host.GOARCH = "other-arch"
	foreign.Add("m", 3, "ns", Lower, 0.1, 0)
	for _, r := range []*Report{old, newer, foreign} {
		if _, err := r.Write(dir); err != nil {
			t.Fatal(err)
		}
	}
	// A corrupt file must be skipped, not wedge the gate.
	if err := os.WriteFile(filepath.Join(dir, "BENCH_20269999T999999Z.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, path, err := LoadLatest(dir, CurrentHost(), false)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Metrics["m"].Value != 2 {
		t.Fatalf("LoadLatest picked %+v (path %s), want the June report (foreign host skipped)", got, path)
	}
	// anyHost picks the foreign July report instead.
	got, _, err = LoadLatest(dir, CurrentHost(), true)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Metrics["m"].Value != 3 {
		t.Fatalf("LoadLatest(anyHost) picked %+v, want the foreign July report", got)
	}
}

func TestCompareVerdicts(t *testing.T) {
	base := New(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC), nil)
	base.Add("lat_ok", 100, "ns", Lower, 0.2, 0)
	base.Add("lat_bad", 100, "ns", Lower, 0.2, 0)
	base.Add("lat_good", 100, "ns", Lower, 0.2, 0)
	base.Add("thr_bad", 100, "Melem/s", Higher, 0.2, 0)
	base.Add("allocs", 2, "objects", Lower, 0, 3)
	base.Add("gone", 1, "ns", Lower, 0.2, 0)
	cur := New(time.Date(2026, 1, 2, 0, 0, 0, 0, time.UTC), nil)
	cur.Add("lat_ok", 115, "ns", Lower, 0.2, 0)       // +15% < 20% band
	cur.Add("lat_bad", 130, "ns", Lower, 0.2, 0)      // +30% > 20% band
	cur.Add("lat_good", 70, "ns", Lower, 0.2, 0)      // -30%: improved
	cur.Add("thr_bad", 70, "Melem/s", Higher, 0.2, 0) // -30% throughput: regressed
	cur.Add("allocs", 4, "objects", Lower, 0, 3)      // +2 <= abs slack 3
	cur.Add("fresh", 5, "ns", Lower, 0.2, 0)

	want := map[string]Verdict{
		"lat_ok": OK, "lat_bad": Regressed, "lat_good": Improved,
		"thr_bad": Regressed, "allocs": OK, "gone": Missing, "fresh": NewMetric,
	}
	deltas := Compare(base, cur, 1)
	if len(deltas) != len(want) {
		t.Fatalf("%d deltas, want %d", len(deltas), len(want))
	}
	for _, d := range deltas {
		if d.Verdict != want[d.Name] {
			t.Errorf("%s: verdict %s, want %s (base %.0f cur %.0f)", d.Name, d.Verdict, want[d.Name], d.Base, d.Cur)
		}
	}
	// Direction-normalized sign: regressed throughput reads positive.
	for _, d := range deltas {
		if d.Name == "thr_bad" && d.ChangePct <= 0 {
			t.Errorf("thr_bad ChangePct = %.1f, want positive (worse)", d.ChangePct)
		}
	}
	if regs := Regressions(deltas); len(regs) != 3 { // lat_bad, thr_bad, gone
		t.Errorf("Regressions returned %d, want 3: %+v", len(regs), regs)
	}
	// Doubling the tolerance (CI mode) forgives the 30% movements.
	for _, d := range Compare(base, cur, 2) {
		if d.Name == "lat_bad" && d.Verdict != OK {
			t.Errorf("scale=2: lat_bad verdict %s, want ok", d.Verdict)
		}
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{7}, 7},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// Median must not mutate its input.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Median mutated its input: %v", in)
	}
}
