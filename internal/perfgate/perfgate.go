// Package perfgate persists performance measurements as a trajectory of
// schema-versioned BENCH_<stamp>.json files and compares a fresh run
// against the most recent baseline with noise-aware, per-metric
// tolerances. cmd/perfbench is the producer; `make perf` and CI are the
// consumers. The gate's contract: a regression beyond a metric's
// tolerance is loud (non-zero exit, per-metric report), and a regressed
// run never silently becomes the next baseline.
package perfgate

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"
)

// SchemaVersion identifies the report layout. Readers reject files with a
// different major schema so a stale trajectory cannot produce nonsense
// verdicts after a format change.
const SchemaVersion = 1

// StampLayout is the timestamp layout embedded in report filenames;
// lexicographic order equals chronological order.
const StampLayout = "20060102T150405Z"

// FilePrefix is the report filename prefix: BENCH_<stamp>.json.
const FilePrefix = "BENCH_"

// Direction states which way a metric is better.
type Direction string

const (
	// Lower marks latency-like metrics: smaller is better.
	Lower Direction = "lower"
	// Higher marks throughput-like metrics: bigger is better.
	Higher Direction = "higher"
)

// Host fingerprints the machine a report was measured on. Baselines are
// only comparable within one fingerprint: comparing a laptop run against
// a CI-runner baseline yields noise, not verdicts.
type Host struct {
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	GoVersion string `json:"goVersion"`
}

// CurrentHost captures the running machine's fingerprint.
func CurrentHost() Host {
	return Host{
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		GoVersion: runtime.Version(),
	}
}

// Fingerprint renders the comparability key.
func (h Host) Fingerprint() string {
	return fmt.Sprintf("%s/%s/cpu%d/%s", h.GOOS, h.GOARCH, h.CPUs, h.GoVersion)
}

// Metric is one measured value plus the tolerance that separates noise
// from regression. Tol is relative (0.25 = 25%); AbsTol is an absolute
// slack added on top, for metrics whose noise floor is additive (e.g.
// allocation counts near zero, where any relative band collapses).
type Metric struct {
	Value  float64   `json:"value"`
	Unit   string    `json:"unit"`
	Dir    Direction `json:"dir"`
	Tol    float64   `json:"tol"`
	AbsTol float64   `json:"absTol,omitempty"`
}

// Report is one benchmark run: a point on the performance trajectory.
type Report struct {
	Schema  int               `json:"schema"`
	Stamp   string            `json:"stamp"`
	Host    Host              `json:"host"`
	Config  map[string]string `json:"config,omitempty"`
	Metrics map[string]Metric `json:"metrics"`
}

// New builds an empty report stamped at t (UTC) on the current host.
func New(t time.Time, config map[string]string) *Report {
	return &Report{
		Schema:  SchemaVersion,
		Stamp:   t.UTC().Format(StampLayout),
		Host:    CurrentHost(),
		Config:  config,
		Metrics: map[string]Metric{},
	}
}

// Add records one metric.
func (r *Report) Add(name string, value float64, unit string, dir Direction, tol, absTol float64) {
	r.Metrics[name] = Metric{Value: value, Unit: unit, Dir: dir, Tol: tol, AbsTol: absTol}
}

// Filename is the report's canonical filename.
func (r *Report) Filename() string { return FilePrefix + r.Stamp + ".json" }

// Write persists the report into dir as BENCH_<stamp>.json and returns
// the full path.
func (r *Report) Write(dir string) (string, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, r.Filename())
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// Load reads and validates one report file.
func Load(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("%s: schema %d, this binary reads schema %d", path, r.Schema, SchemaVersion)
	}
	return &r, nil
}

// LoadLatest returns the newest report in dir whose host fingerprint
// matches h (or any host when anyHost is set), together with its path.
// No matching report is not an error: (nil, "", nil) means the trajectory
// starts here. Unreadable or schema-mismatched files are skipped — one
// corrupt point must not wedge the gate.
func LoadLatest(dir string, h Host, anyHost bool) (*Report, string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, "", nil
		}
		return nil, "", err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasPrefix(n, FilePrefix) && strings.HasSuffix(n, ".json") {
			names = append(names, n)
		}
	}
	// Stamp layout sorts lexicographically = chronologically; walk
	// newest-first until one loads and matches.
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	for _, n := range names {
		path := filepath.Join(dir, n)
		r, err := Load(path)
		if err != nil {
			continue
		}
		if !anyHost && r.Host.Fingerprint() != h.Fingerprint() {
			continue
		}
		return r, path, nil
	}
	return nil, "", nil
}

// Verdict classifies one metric's movement between two reports.
type Verdict string

const (
	// OK: within tolerance of the baseline.
	OK Verdict = "ok"
	// Regressed: worse than the baseline beyond tolerance.
	Regressed Verdict = "REGRESSED"
	// Improved: better than the baseline beyond tolerance — a candidate
	// for celebrating, and for the baseline advancing.
	Improved Verdict = "improved"
	// NewMetric: present now, absent from the baseline.
	NewMetric Verdict = "new"
	// Missing: present in the baseline, absent now — a silently dropped
	// measurement is reported, never ignored.
	Missing Verdict = "MISSING"
)

// Delta is one metric's comparison against the baseline.
type Delta struct {
	Name    string
	Verdict Verdict
	Base    float64
	Cur     float64
	Unit    string
	// ChangePct is the relative movement in percent, signed so that
	// positive always means worse (direction-normalized).
	ChangePct float64
	// LimitPct is the tolerance band in percent after scaling.
	LimitPct float64
}

// Compare evaluates cur against base metric by metric. scale multiplies
// every tolerance (CI uses 2 for noisy shared runners; 1 locally). The
// current report's tolerance and direction govern each metric — the
// running suite defines the contract, the baseline only supplies values.
func Compare(base, cur *Report, scale float64) []Delta {
	if scale <= 0 {
		scale = 1
	}
	names := make(map[string]bool, len(cur.Metrics)+len(base.Metrics))
	for n := range cur.Metrics {
		names[n] = true
	}
	for n := range base.Metrics {
		names[n] = true
	}
	deltas := make([]Delta, 0, len(names))
	for n := range names {
		cm, haveCur := cur.Metrics[n]
		bm, haveBase := base.Metrics[n]
		d := Delta{Name: n, Base: bm.Value, Cur: cm.Value, Unit: cm.Unit}
		switch {
		case !haveBase:
			d.Verdict, d.Unit = NewMetric, cm.Unit
		case !haveCur:
			d.Verdict, d.Unit = Missing, bm.Unit
		default:
			d.Verdict = verdict(bm.Value, cm, scale)
			if bm.Value != 0 {
				d.ChangePct = (cm.Value - bm.Value) / bm.Value * 100
				if cm.Dir == Higher {
					d.ChangePct = -d.ChangePct // positive = worse, always
				}
			}
			d.LimitPct = cm.Tol * scale * 100
		}
		deltas = append(deltas, d)
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Name < deltas[j].Name })
	return deltas
}

// verdict applies the tolerance band: worse than base by more than
// (relative tol + absolute slack) regresses, better by more than the
// band improves, anything inside is noise.
func verdict(base float64, cur Metric, scale float64) Verdict {
	rel := base * cur.Tol * scale
	abs := cur.AbsTol * scale
	worse := cur.Value - base
	if cur.Dir == Higher {
		worse = base - cur.Value
	}
	switch {
	case worse > rel+abs:
		return Regressed
	case -worse > rel+abs:
		return Improved
	default:
		return OK
	}
}

// Regressions filters the deltas the gate fails on: regressed metrics
// and measurements that vanished.
func Regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Verdict == Regressed || d.Verdict == Missing {
			out = append(out, d)
		}
	}
	return out
}

// Median returns the median of xs (mean of the middle pair for even
// lengths, 0 for empty input) without mutating xs. Medians-of-N is the
// suite's noise filter: one descheduled run cannot fail the gate.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}
