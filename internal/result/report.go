package result

import (
	"encoding/json"
	"io"

	"ppscan/graph"
	"ppscan/internal/intersect"
)

// RunReport is a machine-readable summary of one clustering run, suitable
// for logging pipelines and regression tracking.
type RunReport struct {
	Algorithm      string  `json:"algorithm"`
	Eps            string  `json:"eps"`
	Mu             int32   `json:"mu"`
	Workers        int     `json:"workers"`
	Vertices       int32   `json:"vertices"`
	Edges          int64   `json:"edges"`
	Cores          int     `json:"cores"`
	Clusters       int     `json:"clusters"`
	Memberships    int     `json:"memberships"`
	Hubs           int     `json:"hubs"`
	Outliers       int     `json:"outliers"`
	Coverage       float64 `json:"coverage"`
	RuntimeNs      int64   `json:"runtimeNs"`
	CommBytes      int64   `json:"commBytes,omitempty"`
	PhaseNs        []int64 `json:"phaseNs,omitempty"`
	CompSimCalls   int64   `json:"compSimCalls"`
	CompSimByPhase []int64 `json:"compSimByPhase,omitempty"`
	// Kernel carries the intersection-kernel telemetry when the run
	// collected it (ppSCAN with observability enabled).
	Kernel *intersect.Stats `json:"kernel,omitempty"`
}

// NewRunReport assembles the report for a completed run, including the
// hub/outlier classification.
func NewRunReport(g *graph.Graph, r *Result) RunReport {
	rep := RunReport{
		Algorithm:    r.Stats.Algorithm,
		Eps:          r.Eps,
		Mu:           r.Mu,
		Workers:      r.Stats.Workers,
		Vertices:     g.NumVertices(),
		Edges:        g.NumEdges(),
		Cores:        r.NumCores(),
		Clusters:     r.NumClusters(),
		Memberships:  len(r.NonCore),
		RuntimeNs:    int64(r.Stats.Total),
		CommBytes:    r.Stats.CommBytes,
		CompSimCalls: r.Stats.CompSimCalls,
	}
	covered := 0
	for _, att := range ClassifyHubsOutliersParallel(g, r, r.Stats.Workers) {
		switch att {
		case AttachClustered:
			covered++
		case AttachHub:
			rep.Hubs++
		case AttachOutlier:
			rep.Outliers++
		}
	}
	if g.NumVertices() > 0 {
		rep.Coverage = float64(covered) / float64(g.NumVertices())
	}
	var phaseSum int64
	for _, d := range r.Stats.PhaseTimes {
		phaseSum += int64(d)
	}
	if phaseSum > 0 {
		rep.PhaseNs = make([]int64, NumPhases)
		for i, d := range r.Stats.PhaseTimes {
			rep.PhaseNs[i] = int64(d)
		}
	}
	var callSum int64
	for _, n := range r.Stats.CompSimByPhase {
		callSum += n
	}
	if callSum > 0 {
		rep.CompSimByPhase = make([]int64, NumPhases)
		for i, n := range r.Stats.CompSimByPhase {
			rep.CompSimByPhase[i] = n
		}
	}
	if r.Stats.Kernel.Calls > 0 {
		k := r.Stats.Kernel
		rep.Kernel = &k
	}
	return rep
}

// WriteJSON emits the report as indented JSON.
func (rep RunReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
