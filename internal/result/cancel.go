package result

import "fmt"

// PartialError reports a clustering run that was aborted by context
// cancellation or deadline expiry before completing. The run's partial
// statistics — phase wall times, similarity-computation counts and (for the
// distributed surrogate) communication bytes accumulated up to the abort
// point — are preserved so operators can see where the budget went.
//
// PartialError unwraps to the context's error, so callers can use
// errors.Is(err, context.Canceled) / errors.Is(err, context.DeadlineExceeded)
// to distinguish explicit cancellation from a deadline.
type PartialError struct {
	// Stats holds the statistics accumulated before the abort. Stats.Total
	// is the wall time until the abort; PhaseTimes covers only completed
	// (or partially completed) phases.
	Stats Stats
	// Phase names the phase or superstep that was executing when the run
	// observed the cancellation.
	Phase string
	// Err is the underlying context error (context.Canceled or
	// context.DeadlineExceeded).
	Err error
}

// Error implements the error interface.
func (e *PartialError) Error() string {
	return fmt.Sprintf("%s aborted during %s after %v: %v",
		e.Stats.Algorithm, e.Phase, e.Stats.Total, e.Err)
}

// Unwrap returns the underlying context error.
func (e *PartialError) Unwrap() error { return e.Err }
