package result

import (
	"fmt"
	"reflect"
	"testing"
)

// TestCloneDetachesEveryField is the runtime twin of the wsalias analyzer:
// results from pooled workspaces alias workspace memory, and Clone is the
// only sanctioned way to let one outlive its workspace's release. The test
// populates *every* field of Result via reflection (so a field added in the
// future is covered automatically), clones, and then checks (a) value
// equality and (b) that no slice, map or pointer reachable from the clone
// shares memory with the original. Adding a reference-typed field to Result
// (or Stats) without detaching it in Clone fails here before it can corrupt
// a cached response.
func TestCloneDetachesEveryField(t *testing.T) {
	var orig Result
	seed := 0
	fill(t, reflect.ValueOf(&orig).Elem(), "Result", &seed)

	clone := orig.Clone()

	if !reflect.DeepEqual(&orig, clone) {
		t.Fatalf("Clone is not value-equal to the original:\norig:  %+v\nclone: %+v", orig, *clone)
	}
	assertDetached(t, "Result", reflect.ValueOf(orig), reflect.ValueOf(*clone))
}

func TestCloneNil(t *testing.T) {
	if c := (*Result)(nil).Clone(); c != nil {
		t.Fatalf("(*Result)(nil).Clone() = %v, want nil", c)
	}
}

// fill sets v to a non-zero value, descending into structs, slices, arrays,
// maps and pointers. Each scalar gets a distinct value so swapped or merged
// fields can't cancel out in the equality check.
func fill(t *testing.T, v reflect.Value, path string, seed *int) {
	t.Helper()
	if !v.CanSet() && v.Kind() != reflect.Struct && v.Kind() != reflect.Array {
		t.Fatalf("%s: cannot set field (unexported?); Clone completeness cannot be verified for it", path)
	}
	switch v.Kind() {
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			fill(t, v.Field(i), path+"."+v.Type().Field(i).Name, seed)
		}
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			fill(t, v.Index(i), fmt.Sprintf("%s[%d]", path, i), seed)
		}
	case reflect.Slice:
		s := reflect.MakeSlice(v.Type(), 2, 2)
		for i := 0; i < 2; i++ {
			fill(t, s.Index(i), fmt.Sprintf("%s[%d]", path, i), seed)
		}
		v.Set(s)
	case reflect.Map:
		m := reflect.MakeMap(v.Type())
		k := reflect.New(v.Type().Key()).Elem()
		fill(t, k, path+"(key)", seed)
		e := reflect.New(v.Type().Elem()).Elem()
		fill(t, e, path+"(value)", seed)
		m.SetMapIndex(k, e)
		v.Set(m)
	case reflect.Pointer:
		p := reflect.New(v.Type().Elem())
		fill(t, p.Elem(), path+".*", seed)
		v.Set(p)
	case reflect.String:
		*seed++
		v.SetString(fmt.Sprintf("s%d", *seed))
	case reflect.Bool:
		v.SetBool(true)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		*seed++
		v.SetInt(int64(*seed))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		*seed++
		v.SetUint(uint64(*seed))
	case reflect.Float32, reflect.Float64:
		*seed++
		v.SetFloat(float64(*seed))
	default:
		t.Fatalf("%s: fill does not handle kind %v; extend the test alongside the new field", path, v.Kind())
	}
}

// assertDetached fails if any slice/map/pointer reachable from b shares
// memory with its counterpart in a. Strings are immutable and may share.
func assertDetached(t *testing.T, path string, a, b reflect.Value) {
	t.Helper()
	switch a.Kind() {
	case reflect.Struct:
		for i := 0; i < a.NumField(); i++ {
			assertDetached(t, path+"."+a.Type().Field(i).Name, a.Field(i), b.Field(i))
		}
	case reflect.Array:
		for i := 0; i < a.Len(); i++ {
			assertDetached(t, fmt.Sprintf("%s[%d]", path, i), a.Index(i), b.Index(i))
		}
	case reflect.Slice:
		if a.Len() > 0 && a.Pointer() == b.Pointer() {
			t.Errorf("%s: clone shares the slice backing array; Clone must detach it (slices.Clone)", path)
			return
		}
		for i := 0; i < a.Len() && i < b.Len(); i++ {
			assertDetached(t, fmt.Sprintf("%s[%d]", path, i), a.Index(i), b.Index(i))
		}
	case reflect.Map:
		if !a.IsNil() && a.Pointer() == b.Pointer() {
			t.Errorf("%s: clone shares the map; Clone must detach it (maps.Clone)", path)
			return
		}
		iter := a.MapRange()
		for iter.Next() {
			bv := b.MapIndex(iter.Key())
			if bv.IsValid() {
				assertDetached(t, fmt.Sprintf("%s[%v]", path, iter.Key()), iter.Value(), bv)
			}
		}
	case reflect.Pointer:
		if !a.IsNil() && a.Pointer() == b.Pointer() {
			t.Errorf("%s: clone shares the pointee; Clone must deep-copy it", path)
			return
		}
		if !a.IsNil() && !b.IsNil() {
			assertDetached(t, path+".*", a.Elem(), b.Elem())
		}
	}
}
