package result

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Write serializes a result in a stable, line-oriented, diffable text
// format:
//
//	# ppscan-result eps=<eps> mu=<mu> vertices=<n>
//	v <vertex> <C|N> <clusterID or -1>     (one line per vertex)
//	m <vertex> <clusterID>                 (one line per non-core membership)
//
// Two equal results (per Equal) always serialize to identical bytes.
func Write(w io.Writer, r *Result) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# ppscan-result eps=%s mu=%d vertices=%d\n",
		r.Eps, r.Mu, len(r.Roles)); err != nil {
		return err
	}
	for v, role := range r.Roles {
		tag := "N"
		if role == RoleCore {
			tag = "C"
		}
		if _, err := fmt.Fprintf(bw, "v %d %s %d\n", v, tag, r.CoreClusterID[v]); err != nil {
			return err
		}
	}
	for _, m := range r.NonCore {
		if _, err := fmt.Fprintf(bw, "m %d %d\n", m.V, m.ClusterID); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses the format produced by Write.
func Read(rd io.Reader) (*Result, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("result: empty input")
	}
	header := sc.Text()
	if !strings.HasPrefix(header, "# ppscan-result ") {
		return nil, fmt.Errorf("result: bad header %q", header)
	}
	res := &Result{}
	var n int
	for _, field := range strings.Fields(header)[2:] {
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("result: bad header field %q", field)
		}
		switch key {
		case "eps":
			res.Eps = val
		case "mu":
			mu, err := strconv.ParseInt(val, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("result: bad mu %q", val)
			}
			res.Mu = int32(mu)
		case "vertices":
			v, err := strconv.Atoi(val)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("result: bad vertex count %q", val)
			}
			n = v
		default:
			return nil, fmt.Errorf("result: unknown header field %q", key)
		}
	}
	res.Roles = make([]Role, n)
	res.CoreClusterID = make([]int32, n)
	seen := make([]bool, n)
	vertexRecords := 0
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch {
		case fields[0] == "v" && len(fields) == 4:
			v, err1 := strconv.ParseInt(fields[1], 10, 32)
			id, err2 := strconv.ParseInt(fields[3], 10, 32)
			if err1 != nil || err2 != nil || v < 0 || v >= int64(n) {
				return nil, fmt.Errorf("result: line %d: bad vertex record %q", lineNo, line)
			}
			switch fields[2] {
			case "C":
				res.Roles[v] = RoleCore
			case "N":
				res.Roles[v] = RoleNonCore
			default:
				return nil, fmt.Errorf("result: line %d: bad role %q", lineNo, fields[2])
			}
			res.CoreClusterID[v] = int32(id)
			if seen[v] {
				return nil, fmt.Errorf("result: line %d: duplicate vertex record for %d", lineNo, v)
			}
			seen[v] = true
			vertexRecords++
		case fields[0] == "m" && len(fields) == 3:
			v, err1 := strconv.ParseInt(fields[1], 10, 32)
			id, err2 := strconv.ParseInt(fields[2], 10, 32)
			if err1 != nil || err2 != nil || v < 0 || v >= int64(n) {
				return nil, fmt.Errorf("result: line %d: bad membership record %q", lineNo, line)
			}
			res.NonCore = append(res.NonCore, Membership{V: int32(v), ClusterID: int32(id)})
		default:
			return nil, fmt.Errorf("result: line %d: unrecognized record %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if vertexRecords != n {
		return nil, fmt.Errorf("result: %d vertex records for %d declared vertices", vertexRecords, n)
	}
	res.Normalize()
	return res, nil
}
