package result

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestRunReport(t *testing.T) {
	g := hubGraph(t)
	r := hubResult()
	r.Normalize()
	r.Eps = "3/5"
	r.Mu = 2
	r.Stats = Stats{
		Algorithm:    "ppSCAN",
		Workers:      2,
		CompSimCalls: 42,
		Total:        5 * time.Millisecond,
	}
	r.Stats.PhaseTimes[PhaseCheckCore] = 3 * time.Millisecond
	r.Stats.CompSimByPhase[PhaseCheckCore] = 40
	r.Stats.CompSimByPhase[PhaseClusterNonCore] = 2

	rep := NewRunReport(g, r)
	if rep.Algorithm != "ppSCAN" || rep.Eps != "3/5" || rep.Mu != 2 {
		t.Errorf("identity fields: %+v", rep)
	}
	if rep.Vertices != 8 || rep.Edges != 9 {
		t.Errorf("graph fields: %+v", rep)
	}
	if rep.Cores != 6 || rep.Clusters != 2 {
		t.Errorf("clustering fields: %+v", rep)
	}
	if rep.Hubs != 1 || rep.Outliers != 1 {
		t.Errorf("hub/outlier fields: %+v", rep)
	}
	if rep.Coverage != 6.0/8.0 {
		t.Errorf("coverage = %f", rep.Coverage)
	}
	if rep.CompSimCalls != 42 || rep.CompSimByPhase[int(PhaseCheckCore)] != 40 {
		t.Errorf("workload fields: %+v", rep)
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back RunReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if back.Clusters != rep.Clusters || back.Coverage != rep.Coverage {
		t.Errorf("JSON round trip changed report")
	}
}

func TestRunReportOmitsEmptyPhases(t *testing.T) {
	g := hubGraph(t)
	r := hubResult()
	r.Normalize()
	rep := NewRunReport(g, r) // no stats at all
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("phaseNs")) {
		t.Errorf("phaseNs should be omitted when empty: %s", buf.String())
	}
	if bytes.Contains(buf.Bytes(), []byte("compSimByPhase")) {
		t.Errorf("compSimByPhase should be omitted when empty")
	}
}
