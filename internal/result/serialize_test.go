package result

import (
	"bytes"
	"strings"
	"testing"
)

func TestSerializeRoundTrip(t *testing.T) {
	r := &Result{
		Eps:           "1/5",
		Mu:            5,
		Roles:         []Role{RoleCore, RoleNonCore, RoleCore, RoleNonCore},
		CoreClusterID: []int32{0, -1, 0, -1},
		NonCore: []Membership{
			{V: 1, ClusterID: 0},
			{V: 3, ClusterID: 0},
		},
	}
	var buf bytes.Buffer
	if err := Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := Equal(r, got); err != nil {
		t.Fatalf("round trip changed result: %v", err)
	}
	if got.Eps != "1/5" || got.Mu != 5 {
		t.Errorf("params lost: %s %d", got.Eps, got.Mu)
	}
}

func TestSerializeDeterministic(t *testing.T) {
	r := &Result{
		Eps:           "0.5",
		Mu:            2,
		Roles:         []Role{RoleCore, RoleCore},
		CoreClusterID: []int32{0, 0},
	}
	var a, b bytes.Buffer
	if err := Write(&a, r); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, r); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("serialization not deterministic")
	}
}

func TestSerializeEmpty(t *testing.T) {
	r := &Result{Eps: "1/2", Mu: 1}
	var buf bytes.Buffer
	if err := Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Roles) != 0 || len(got.NonCore) != 0 {
		t.Errorf("empty round trip produced %d roles, %d memberships", len(got.Roles), len(got.NonCore))
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	bad := []string{
		"",
		"nonsense\n",
		"# ppscan-result eps=0.5 mu=x vertices=1\n",
		"# ppscan-result eps=0.5 mu=1 vertices=-1\n",
		"# ppscan-result eps=0.5 mu=1 vertices=1\nv 5 C 0\n",                 // vertex out of range
		"# ppscan-result eps=0.5 mu=1 vertices=1\nv 0 X 0\n",                 // bad role
		"# ppscan-result eps=0.5 mu=1 vertices=1\nq 0 0\n",                   // bad record
		"# ppscan-result eps=0.5 mu=1 vertices=1\nm 9 0\n",                   // membership out of range
		"# ppscan-result eps=0.5 mu=1 vertices=1 bogus\n",                    // bad header field
		"# ppscan-result eps=0.5 mu=1 wat=1\n",                               // unknown header key
		"# ppscan-result eps=0.5 mu=1 vertices=2\nv 0 C 0\n",                 // missing vertex record
		"# ppscan-result eps=0.5 mu=1 vertices=1\nv 0 C 0\nv 0 C 0\nm 0 0\n", // duplicate record
	}
	for _, in := range bad {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("Read accepted %q", in)
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# ppscan-result eps=0.5 mu=1 vertices=1\n\n# comment\nv 0 N -1\n"
	r, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if r.Roles[0] != RoleNonCore {
		t.Errorf("role = %v", r.Roles[0])
	}
}
