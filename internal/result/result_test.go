package result

import (
	"testing"

	"ppscan/graph"
	"ppscan/internal/simdef"
)

func TestRoleString(t *testing.T) {
	if RoleUnknown.String() != "Unknown" || RoleCore.String() != "Core" || RoleNonCore.String() != "NonCore" {
		t.Errorf("role strings wrong")
	}
	if Role(9).String() == "" {
		t.Errorf("unknown role should stringify")
	}
}

func TestAttachmentString(t *testing.T) {
	if AttachClustered.String() != "Clustered" || AttachHub.String() != "Hub" || AttachOutlier.String() != "Outlier" {
		t.Errorf("attachment strings wrong")
	}
	if Attachment(9).String() == "" {
		t.Errorf("unknown attachment should stringify")
	}
}

func TestNormalizeSortsAndDedups(t *testing.T) {
	r := &Result{NonCore: []Membership{
		{V: 5, ClusterID: 2},
		{V: 1, ClusterID: 3},
		{V: 5, ClusterID: 2}, // dup
		{V: 1, ClusterID: 1},
	}}
	r.Normalize()
	want := []Membership{{1, 1}, {1, 3}, {5, 2}}
	if len(r.NonCore) != len(want) {
		t.Fatalf("NonCore = %v", r.NonCore)
	}
	for i := range want {
		if r.NonCore[i] != want[i] {
			t.Fatalf("NonCore = %v, want %v", r.NonCore, want)
		}
	}
}

func smallResult() *Result {
	return &Result{
		Roles:         []Role{RoleCore, RoleCore, RoleNonCore, RoleNonCore},
		CoreClusterID: []int32{0, 0, -1, -1},
		NonCore:       []Membership{{V: 2, ClusterID: 0}},
	}
}

func TestCountsAndClusters(t *testing.T) {
	r := smallResult()
	if r.NumCores() != 2 {
		t.Errorf("NumCores = %d", r.NumCores())
	}
	if r.NumClusters() != 1 {
		t.Errorf("NumClusters = %d", r.NumClusters())
	}
	cl := r.Clusters()
	members := cl[0]
	if len(members) != 3 || members[0] != 0 || members[1] != 1 || members[2] != 2 {
		t.Errorf("cluster 0 = %v", members)
	}
	clustered := r.Clustered()
	wantClustered := []bool{true, true, true, false}
	for i := range wantClustered {
		if clustered[i] != wantClustered[i] {
			t.Errorf("Clustered[%d] = %v", i, clustered[i])
		}
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	a := smallResult()
	if err := Equal(a, smallResult()); err != nil {
		t.Fatalf("identical results unequal: %v", err)
	}
	b := smallResult()
	b.Roles[2] = RoleCore
	if Equal(a, b) == nil {
		t.Errorf("role difference not detected")
	}
	b = smallResult()
	b.CoreClusterID[1] = 1
	if Equal(a, b) == nil {
		t.Errorf("cluster id difference not detected")
	}
	b = smallResult()
	b.NonCore = nil
	if Equal(a, b) == nil {
		t.Errorf("membership count difference not detected")
	}
	b = smallResult()
	b.NonCore[0].ClusterID = 7
	if Equal(a, b) == nil {
		t.Errorf("membership difference not detected")
	}
	b = &Result{Roles: []Role{RoleCore}}
	if Equal(a, b) == nil {
		t.Errorf("size difference not detected")
	}
}

// hubGraph: two triangles {0,1,2} and {3,4,5}; vertex 6 bridges to 0 and 3;
// vertex 7 hangs off 6. With eps=0.6, mu=2: triangles are clusters, 6 is a
// hub, 7 is an outlier (worked out by hand in the test comments).
func hubGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(8, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2},
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 3, V: 5},
		{U: 6, V: 0}, {U: 6, V: 3}, {U: 6, V: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func hubResult() *Result {
	return &Result{
		Roles: []Role{
			RoleCore, RoleCore, RoleCore,
			RoleCore, RoleCore, RoleCore,
			RoleNonCore, RoleNonCore,
		},
		CoreClusterID: []int32{0, 0, 0, 3, 3, 3, -1, -1},
		NonCore:       nil,
	}
}

func TestClassifyHubsOutliers(t *testing.T) {
	g := hubGraph(t)
	r := hubResult()
	att := ClassifyHubsOutliers(g, r)
	want := []Attachment{
		AttachClustered, AttachClustered, AttachClustered,
		AttachClustered, AttachClustered, AttachClustered,
		AttachHub, AttachOutlier,
	}
	for v := range want {
		if att[v] != want[v] {
			t.Errorf("attachment of %d = %v, want %v", v, att[v], want[v])
		}
	}
}

func TestClassifyHubViaNonCoreMembership(t *testing.T) {
	// An unclustered vertex whose neighbors are non-cores belonging to two
	// different clusters must also be a hub.
	g, err := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	r := &Result{
		Roles:         []Role{RoleNonCore, RoleNonCore, RoleNonCore},
		CoreClusterID: []int32{-1, -1, -1},
		NonCore:       []Membership{{V: 0, ClusterID: 10}, {V: 2, ClusterID: 20}},
	}
	r.Normalize()
	att := ClassifyHubsOutliers(g, r)
	if att[1] != AttachHub {
		t.Errorf("vertex 1 = %v, want Hub", att[1])
	}
	if att[0] != AttachClustered || att[2] != AttachClustered {
		t.Errorf("membership vertices should be clustered: %v", att)
	}
}

func TestClassifySingleClusterNeighborIsOutlier(t *testing.T) {
	g, err := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	r := &Result{
		Roles:         []Role{RoleNonCore, RoleNonCore, RoleNonCore},
		CoreClusterID: []int32{-1, -1, -1},
		NonCore:       []Membership{{V: 1, ClusterID: 5}, {V: 2, ClusterID: 5}},
	}
	r.Normalize()
	att := ClassifyHubsOutliers(g, r)
	if att[0] != AttachOutlier {
		t.Errorf("vertex 0 = %v, want Outlier (both neighbors in one cluster)", att[0])
	}
}

func TestClassifyParallelMatchesSequential(t *testing.T) {
	g := hubGraph(t)
	r := hubResult()
	r.Normalize()
	want := ClassifyHubsOutliers(g, r)
	for _, workers := range []int{1, 2, 5, 16} {
		got := ClassifyHubsOutliersParallel(g, r, workers)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("workers=%d: vertex %d = %v, want %v", workers, v, got[v], want[v])
			}
		}
	}
	// Empty graph does not panic.
	eg := &Result{}
	egGraph, _ := graph.FromEdges(0, nil)
	if got := ClassifyHubsOutliersParallel(egGraph, eg, 4); len(got) != 0 {
		t.Errorf("empty classify = %v", got)
	}
}

func TestValidateAgainstAcceptsCorrectResult(t *testing.T) {
	g := hubGraph(t)
	r := hubResult()
	r.Normalize()
	eps := simdef.MustEpsilon("0.6")
	if err := ValidateAgainst(g, r, eps, 2); err != nil {
		t.Fatalf("ValidateAgainst rejected the hand-checked result: %v", err)
	}
}

func TestValidateAgainstRejectsWrongResults(t *testing.T) {
	g := hubGraph(t)
	eps := simdef.MustEpsilon("0.6")

	r := hubResult()
	r.Roles[0] = RoleNonCore
	if ValidateAgainst(g, r, eps, 2) == nil {
		t.Errorf("wrong role accepted")
	}

	r = hubResult()
	r.CoreClusterID[1] = 3
	if ValidateAgainst(g, r, eps, 2) == nil {
		t.Errorf("wrong cluster id accepted")
	}

	r = hubResult()
	r.NonCore = []Membership{{V: 6, ClusterID: 0}}
	if ValidateAgainst(g, r, eps, 2) == nil {
		t.Errorf("spurious membership accepted")
	}

	r = &Result{Roles: []Role{RoleCore}}
	if ValidateAgainst(g, r, eps, 2) == nil {
		t.Errorf("size mismatch accepted")
	}
}

func TestPhaseNamesComplete(t *testing.T) {
	for i, name := range PhaseNames {
		if name == "" {
			t.Errorf("phase %d has no name", i)
		}
	}
}
