package result

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead: arbitrary text must never panic; accepted results must
// round-trip through Write/Read losslessly.
func FuzzRead(f *testing.F) {
	var seed bytes.Buffer
	r := &Result{
		Eps:           "1/2",
		Mu:            2,
		Roles:         []Role{RoleCore, RoleNonCore},
		CoreClusterID: []int32{0, -1},
		NonCore:       []Membership{{V: 1, ClusterID: 0}},
	}
	_ = Write(&seed, r)
	f.Add(seed.String())
	f.Add("")
	f.Add("# ppscan-result eps=0.5 mu=1 vertices=1\nv 0 N -1\n")
	f.Add("# ppscan-result eps=0.5 mu=1 vertices=9999999\n")
	f.Fuzz(func(t *testing.T, data string) {
		parsed, err := Read(strings.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := Write(&out, parsed); err != nil {
			t.Fatalf("Write of accepted result failed: %v", err)
		}
		back, err := Read(&out)
		if err != nil {
			t.Fatalf("re-Read of written result failed: %v", err)
		}
		if err := Equal(parsed, back); err != nil {
			t.Fatalf("round trip changed result: %v", err)
		}
	})
}
