package result

import (
	"errors"
	"fmt"
)

// WorkerPanicError reports a panic recovered inside a scheduler worker.
// The panic is contained: the worker survives (it recovers per task), the
// crew/pool stays usable for the next run, and the coordinator returns
// this error instead of letting the process die. The engine layer poisons
// the workspace that was running when the panic fired so the pool resets
// it before reuse.
type WorkerPanicError struct {
	// Phase names the phase or superstep that was executing (P1–P7,
	// S1–S5, or "static" for the ablation scheduler).
	Phase string
	// Worker is the panicking worker's index.
	Worker int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack, captured at recovery.
	Stack []byte
}

// Error implements the error interface.
func (e *WorkerPanicError) Error() string {
	return fmt.Sprintf("worker %d panicked during %s: %v", e.Worker, e.Phase, e.Value)
}

// ErrStalled is the cause reported by the phase watchdog when a phase
// makes no scheduler progress for the configured stall timeout. It
// surfaces wrapped in a PartialError carrying the stats accumulated up to
// the abort, so errors.Is(err, result.ErrStalled) identifies watchdog
// aborts.
var ErrStalled = errors.New("phase stalled: no scheduler progress within the stall timeout")
