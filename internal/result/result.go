// Package result defines the common output representation shared by every
// structural clustering algorithm in this module, plus canonicalization,
// equality checking and hub/outlier classification.
//
// SCAN semantics (Definitions 2.9–2.10): cores partition into disjoint
// clusters (Lemma 3.5); a non-core vertex may belong to *several* clusters
// (one per similar neighboring core's cluster); vertices in no cluster are
// hubs (if they bridge two clusters) or outliers. Cluster ids follow
// Definition 3.7: the id of a cluster is the minimum core vertex id in it.
package result

import (
	"fmt"
	"runtime"
	"slices"
	"sort"
	"sync"
	"time"

	"ppscan/graph"
	"ppscan/internal/intersect"
	"ppscan/internal/simdef"
)

// Role is a vertex role (Definition 2.5).
type Role int8

const (
	// RoleUnknown is the pre-computation role.
	RoleUnknown Role = iota
	// RoleCore marks vertices with at least µ+1 ε-neighbors.
	RoleCore
	// RoleNonCore marks all other vertices.
	RoleNonCore
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleUnknown:
		return "Unknown"
	case RoleCore:
		return "Core"
	case RoleNonCore:
		return "NonCore"
	default:
		return fmt.Sprintf("Role(%d)", int8(r))
	}
}

// Membership records that non-core vertex V belongs to the cluster with id
// ClusterID.
type Membership struct {
	V         int32
	ClusterID int32
}

// PhaseID indexes the four reported stages of ppSCAN (Figure 6).
type PhaseID int

const (
	// PhasePruning is the similarity-predicate pruning stage.
	PhasePruning PhaseID = iota
	// PhaseCheckCore is core checking + consolidating.
	PhaseCheckCore
	// PhaseClusterCore is two-phase core clustering + cluster-id init.
	PhaseClusterCore
	// PhaseClusterNonCore is the non-core clustering stage.
	PhaseClusterNonCore
	// NumPhases is the stage count.
	NumPhases
)

// PhaseNames are the display names of the four stages, matching Figure 6.
var PhaseNames = [NumPhases]string{
	"similarity-pruning",
	"core-checking",
	"core-clustering",
	"non-core-clustering",
}

// Stats carries per-run instrumentation.
type Stats struct {
	// Algorithm is the producing algorithm's name.
	Algorithm string
	// Workers is the worker count used (1 for sequential algorithms).
	Workers int
	// CompSimCalls counts structural similarity computations (set
	// intersections actually executed), the quantity of Figure 4.
	CompSimCalls int64
	// CompSimByPhase decomposes CompSimCalls per ppSCAN stage (only filled
	// by ppSCAN): almost all intersections happen in core checking; the
	// clustering stages mop up the few edges pruning skipped.
	CompSimByPhase [NumPhases]int64
	// Kernel aggregates set-intersection telemetry across workers (only
	// filled by ppSCAN when observability is enabled): call outcomes, the
	// pruning-bound and early-termination decisions of Definition 3.9, and
	// vectorized-vs-scalar work. It is a read-out of the same per-worker
	// counters the run publishes to its obsv.Registry.
	Kernel intersect.Stats
	// PhaseTimes records wall time per ppSCAN stage (zero for algorithms
	// without that stage).
	PhaseTimes [NumPhases]time.Duration
	// Total is the end-to-end in-memory processing time.
	Total time.Duration
	// CommBytes counts bytes moved between partitions (only filled by the
	// distributed surrogate; the paper's §3.3 communication overhead).
	CommBytes int64
	// SimilarityTime is time spent in similarity evaluation (Figure 1's
	// breakdown); only filled by the sequential baselines.
	SimilarityTime time.Duration
	// ReductionTime is time spent in workload-reduction bookkeeping
	// (Figure 1); only filled by the sequential baselines.
	ReductionTime time.Duration
}

// Result is the output of a structural clustering run.
type Result struct {
	// Eps and Mu echo the parameters of the run.
	Eps string
	Mu  int32
	// Roles holds the final role of every vertex (never RoleUnknown after
	// a completed run).
	Roles []Role
	// CoreClusterID maps each core vertex to its cluster id (the minimum
	// core id in its cluster); -1 for non-cores.
	CoreClusterID []int32
	// NonCore lists non-core cluster memberships, sorted by (V, ClusterID)
	// and deduplicated.
	NonCore []Membership
	// Stats carries instrumentation for the experiment harness.
	Stats Stats
}

// Normalize sorts and deduplicates the non-core membership list in place.
// Algorithms call it once before returning. slices.SortFunc (not
// sort.Slice) keeps the call allocation-free, which the pooled serving
// hot path depends on.
func (r *Result) Normalize() {
	slices.SortFunc(r.NonCore, func(a, b Membership) int {
		if a.V != b.V {
			return int(a.V) - int(b.V)
		}
		return int(a.ClusterID) - int(b.ClusterID)
	})
	out := r.NonCore[:0]
	for i, m := range r.NonCore {
		if i == 0 || m != r.NonCore[i-1] {
			out = append(out, m)
		}
	}
	r.NonCore = out
}

// Clone returns a deep copy of r whose slices share no memory with the
// original. Runs executed on a pooled workspace return results that alias
// workspace buffers (valid only until the workspace's next run); Clone is
// how callers — the server's response cache, conformance suites comparing
// across runs — retain such a result.
func (r *Result) Clone() *Result {
	if r == nil {
		return nil
	}
	c := *r
	c.Roles = slices.Clone(r.Roles)
	c.CoreClusterID = slices.Clone(r.CoreClusterID)
	c.NonCore = slices.Clone(r.NonCore)
	return &c
}

// NumCores returns the number of core vertices.
func (r *Result) NumCores() int {
	n := 0
	for _, role := range r.Roles {
		if role == RoleCore {
			n++
		}
	}
	return n
}

// NumClusters returns the number of distinct clusters.
func (r *Result) NumClusters() int {
	ids := make(map[int32]struct{})
	for _, id := range r.CoreClusterID {
		if id >= 0 {
			ids[id] = struct{}{}
		}
	}
	return len(ids)
}

// Clusters materializes clusters as a map from cluster id to the sorted
// member list (cores first by construction of ids, then non-cores; members
// are sorted and unique, but a non-core vertex may appear in several
// clusters).
func (r *Result) Clusters() map[int32][]int32 {
	out := make(map[int32][]int32)
	for v, id := range r.CoreClusterID {
		if id >= 0 {
			out[id] = append(out[id], int32(v))
		}
	}
	for _, m := range r.NonCore {
		out[m.ClusterID] = append(out[m.ClusterID], m.V)
	}
	for id := range out {
		members := out[id]
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		// Dedup (a vertex cannot be both core and non-core, and NonCore is
		// already deduped, so this is defensive only).
		uniq := members[:0]
		for i, v := range members {
			if i == 0 || v != members[i-1] {
				uniq = append(uniq, v)
			}
		}
		out[id] = uniq
	}
	return out
}

// Clustered reports, per vertex, whether it belongs to at least one cluster.
func (r *Result) Clustered() []bool {
	out := make([]bool, len(r.Roles))
	for v, id := range r.CoreClusterID {
		if id >= 0 {
			out[v] = true
		}
	}
	for _, m := range r.NonCore {
		out[m.V] = true
	}
	return out
}

// Equal compares two results for semantic equality (same roles, same core
// partition with identical cluster ids, same non-core memberships) and
// returns a descriptive error on the first difference. Stats are ignored.
func Equal(a, b *Result) error {
	if len(a.Roles) != len(b.Roles) {
		return fmt.Errorf("result: vertex counts differ: %d vs %d", len(a.Roles), len(b.Roles))
	}
	for v := range a.Roles {
		if a.Roles[v] != b.Roles[v] {
			return fmt.Errorf("result: role of %d differs: %v vs %v", v, a.Roles[v], b.Roles[v])
		}
	}
	for v := range a.CoreClusterID {
		if a.CoreClusterID[v] != b.CoreClusterID[v] {
			return fmt.Errorf("result: cluster id of core %d differs: %d vs %d",
				v, a.CoreClusterID[v], b.CoreClusterID[v])
		}
	}
	if len(a.NonCore) != len(b.NonCore) {
		return fmt.Errorf("result: non-core membership counts differ: %d vs %d",
			len(a.NonCore), len(b.NonCore))
	}
	for i := range a.NonCore {
		if a.NonCore[i] != b.NonCore[i] {
			return fmt.Errorf("result: non-core membership %d differs: %+v vs %+v",
				i, a.NonCore[i], b.NonCore[i])
		}
	}
	return nil
}

// Attachment classifies vertices that are in no cluster (Definition 2.10).
type Attachment int8

const (
	// AttachClustered marks vertices inside at least one cluster.
	AttachClustered Attachment = iota
	// AttachHub marks unclustered vertices adjacent to two different
	// clusters.
	AttachHub
	// AttachOutlier marks the remaining unclustered vertices.
	AttachOutlier
)

// String implements fmt.Stringer.
func (a Attachment) String() string {
	switch a {
	case AttachClustered:
		return "Clustered"
	case AttachHub:
		return "Hub"
	case AttachOutlier:
		return "Outlier"
	default:
		return fmt.Sprintf("Attachment(%d)", int8(a))
	}
}

// ClassifyHubsOutliers labels every vertex as clustered, hub or outlier in
// O(|V| + |E| log) time, as described after Definition 2.10. A vertex u in
// no cluster is a hub iff two of its neighbors belong to different clusters;
// neighbors contribute every cluster they belong to (cores one, non-cores
// possibly several).
func ClassifyHubsOutliers(g *graph.Graph, r *Result) []Attachment {
	n := g.NumVertices()
	out := make([]Attachment, n)
	clustered := r.Clustered()
	// Per-vertex membership index over the sorted NonCore list.
	memberStart := make([]int32, n+1)
	for _, m := range r.NonCore {
		memberStart[m.V+1]++
	}
	for v := int32(0); v < n; v++ {
		memberStart[v+1] += memberStart[v]
	}
	for u := int32(0); u < n; u++ {
		if clustered[u] {
			out[u] = AttachClustered
			continue
		}
		seen := int32(-1)
		hub := false
		consider := func(id int32) {
			if id < 0 || hub {
				return
			}
			if seen < 0 {
				seen = id
			} else if seen != id {
				hub = true
			}
		}
		for _, v := range g.Neighbors(u) {
			if id := r.CoreClusterID[v]; id >= 0 {
				consider(id)
			}
			for i := memberStart[v]; i < memberStart[v+1]; i++ {
				consider(r.NonCore[i].ClusterID)
			}
			if hub {
				break
			}
		}
		if hub {
			out[u] = AttachHub
		} else {
			out[u] = AttachOutlier
		}
	}
	return out
}

// ClassifyHubsOutliersParallel is ClassifyHubsOutliers with the per-vertex
// classification fanned out over workers goroutines (< 1 means GOMAXPROCS).
// The classification of each vertex is independent, so the parallel form is
// exact.
func ClassifyHubsOutliersParallel(g *graph.Graph, r *Result, workers int) []Attachment {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := g.NumVertices()
	out := make([]Attachment, n)
	clustered := r.Clustered()
	memberStart := make([]int32, n+1)
	for _, m := range r.NonCore {
		memberStart[m.V+1]++
	}
	for v := int32(0); v < n; v++ {
		memberStart[v+1] += memberStart[v]
	}
	if int32(workers) > n {
		workers = int(n)
	}
	if workers < 1 {
		return out
	}
	var wg sync.WaitGroup
	chunk := (n + int32(workers) - 1) / int32(workers)
	for w := 0; w < workers; w++ {
		beg := int32(w) * chunk
		if beg >= n {
			break
		}
		end := beg + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(beg, end int32) {
			defer wg.Done()
			for u := beg; u < end; u++ {
				out[u] = classifyOne(g, r, clustered, memberStart, u)
			}
		}(beg, end)
	}
	wg.Wait()
	return out
}

// classifyOne classifies a single vertex given the shared prepared state.
func classifyOne(g *graph.Graph, r *Result, clustered []bool, memberStart []int32, u int32) Attachment {
	if clustered[u] {
		return AttachClustered
	}
	seen := int32(-1)
	for _, v := range g.Neighbors(u) {
		if id := r.CoreClusterID[v]; id >= 0 {
			if seen < 0 {
				seen = id
			} else if seen != id {
				return AttachHub
			}
		}
		for i := memberStart[v]; i < memberStart[v+1]; i++ {
			id := r.NonCore[i].ClusterID
			if seen < 0 {
				seen = id
			} else if seen != id {
				return AttachHub
			}
		}
	}
	return AttachOutlier
}

// ValidateAgainst cross-checks a result against the SCAN definitions on the
// input graph: role correctness by brute-force ε-neighborhood counting,
// core-cluster connectivity via similar core edges, and membership validity.
// It is O(sum of d²) and intended for tests on small graphs.
func ValidateAgainst(g *graph.Graph, r *Result, eps simdef.Epsilon, mu int32) error {
	n := g.NumVertices()
	if int32(len(r.Roles)) != n {
		return fmt.Errorf("result: %d roles for %d vertices", len(r.Roles), n)
	}
	simEdge := func(u, v int32) bool {
		cn := bruteIntersect(g.Neighbors(u), g.Neighbors(v)) + 2
		return eps.Pred(cn, g.Degree(u), g.Degree(v))
	}
	// 1. Roles by definition.
	for u := int32(0); u < n; u++ {
		similar := int32(0)
		for _, v := range g.Neighbors(u) {
			if simEdge(u, v) {
				similar++
			}
		}
		wantCore := similar >= mu // |N_eps(u)| = similar+1 >= mu+1
		if wantCore && r.Roles[u] != RoleCore {
			return fmt.Errorf("result: %d should be Core (similar=%d)", u, similar)
		}
		if !wantCore && r.Roles[u] != RoleNonCore {
			return fmt.Errorf("result: %d should be NonCore (similar=%d)", u, similar)
		}
	}
	// 2. Core clusters = connected components of the similar-core graph.
	uf := newSimpleUF(n)
	for u := int32(0); u < n; u++ {
		if r.Roles[u] != RoleCore {
			continue
		}
		for _, v := range g.Neighbors(u) {
			if u < v && r.Roles[v] == RoleCore && simEdge(u, v) {
				uf.union(u, v)
			}
		}
	}
	// Expected id = min core id per component.
	minID := make(map[int32]int32)
	for u := int32(0); u < n; u++ {
		if r.Roles[u] != RoleCore {
			continue
		}
		root := uf.find(u)
		if cur, ok := minID[root]; !ok || u < cur {
			minID[root] = u
		}
	}
	for u := int32(0); u < n; u++ {
		want := int32(-1)
		if r.Roles[u] == RoleCore {
			want = minID[uf.find(u)]
		}
		if r.CoreClusterID[u] != want {
			return fmt.Errorf("result: cluster id of %d = %d, want %d", u, r.CoreClusterID[u], want)
		}
	}
	// 3. Non-core memberships: exactly those (v, id) with a core neighbor u
	// in cluster id and sim(u,v).
	want := make(map[Membership]struct{})
	for u := int32(0); u < n; u++ {
		if r.Roles[u] != RoleCore {
			continue
		}
		id := minID[uf.find(u)]
		for _, v := range g.Neighbors(u) {
			if r.Roles[v] == RoleNonCore && simEdge(u, v) {
				want[Membership{V: v, ClusterID: id}] = struct{}{}
			}
		}
	}
	if len(want) != len(r.NonCore) {
		return fmt.Errorf("result: %d non-core memberships, want %d", len(r.NonCore), len(want))
	}
	for _, m := range r.NonCore {
		if _, ok := want[m]; !ok {
			return fmt.Errorf("result: unexpected membership %+v", m)
		}
	}
	return nil
}

func bruteIntersect(a, b []int32) int32 {
	var cn int32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			cn++
			i++
			j++
		}
	}
	return cn
}

type simpleUF struct{ parent []int32 }

func newSimpleUF(n int32) *simpleUF {
	u := &simpleUF{parent: make([]int32, n)}
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
	return u
}

func (u *simpleUF) find(x int32) int32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *simpleUF) union(x, y int32) {
	rx, ry := u.find(x), u.find(y)
	if rx != ry {
		if rx > ry {
			rx, ry = ry, rx
		}
		u.parent[ry] = rx
	}
}
