package gen

import (
	"math"
	"testing"
	"testing/quick"

	"ppscan/graph"
)

func TestErdosRenyiBasic(t *testing.T) {
	g := ErdosRenyi(100, 300, 1)
	if g.NumVertices() != 100 {
		t.Fatalf("|V| = %d, want 100", g.NumVertices())
	}
	if g.NumEdges() != 300 {
		t.Fatalf("|E| = %d, want 300 (sampling resamples duplicates)", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestErdosRenyiSaturates(t *testing.T) {
	// Request more edges than pairs exist; must clamp to the complete graph.
	g := ErdosRenyi(5, 100, 2)
	if g.NumEdges() != 10 {
		t.Fatalf("|E| = %d, want 10 (K5)", g.NumEdges())
	}
}

func TestErdosRenyiTinyN(t *testing.T) {
	for _, n := range []int32{0, 1} {
		g := ErdosRenyi(n, 10, 3)
		if g.NumEdges() != 0 {
			t.Errorf("n=%d: got %d edges", n, g.NumEdges())
		}
	}
}

func TestErdosRenyiDeterministic(t *testing.T) {
	a := ErdosRenyi(50, 100, 42)
	b := ErdosRenyi(50, 100, 42)
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed produced different graphs")
	}
	for u := int32(0); u < 50; u++ {
		na, nb := a.Neighbors(u), b.Neighbors(u)
		if len(na) != len(nb) {
			t.Fatalf("same seed produced different adjacency at %d", u)
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("same seed produced different adjacency at %d", u)
			}
		}
	}
}

func TestRollDegreeControl(t *testing.T) {
	for _, d := range []int32{4, 8, 16} {
		g := Roll(2000, d, 7)
		if err := g.Validate(); err != nil {
			t.Fatalf("d=%d Validate: %v", d, err)
		}
		avg := g.AvgDegree()
		if avg < float64(d)*0.8 || avg > float64(d)*1.3 {
			t.Errorf("d=%d: average degree %.2f too far from target", d, avg)
		}
	}
}

func TestRollIsHeavyTailed(t *testing.T) {
	g := Roll(5000, 8, 11)
	// Scale-free: max degree far above the average.
	if float64(g.MaxDegree()) < 4*g.AvgDegree() {
		t.Errorf("max degree %d not heavy-tailed vs average %.1f", g.MaxDegree(), g.AvgDegree())
	}
}

func TestRollSmallN(t *testing.T) {
	g := Roll(3, 40, 1) // k clamped to n-1
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.NumVertices() != 3 {
		t.Fatalf("|V| = %d", g.NumVertices())
	}
}

func TestRMATSkewAndValidity(t *testing.T) {
	g := RMAT(12, 40000, 0.57, 0.19, 0.19, 5)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.NumVertices() != 1<<12 {
		t.Fatalf("|V| = %d, want %d", g.NumVertices(), 1<<12)
	}
	if float64(g.MaxDegree()) < 5*g.AvgDegree() {
		t.Errorf("RMAT should be skewed: max %d avg %.1f", g.MaxDegree(), g.AvgDegree())
	}
}

func TestPlantedPartitionStructure(t *testing.T) {
	g := PlantedPartition(4, 50, 0.3, 0.005, 9)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.NumVertices() != 200 {
		t.Fatalf("|V| = %d, want 200", g.NumVertices())
	}
	// Count intra vs inter community edges; intra should dominate per pair.
	var intra, inter int64
	for _, e := range g.Edges() {
		if e.U/50 == e.V/50 {
			intra++
		} else {
			inter++
		}
	}
	intraPairs := float64(4 * 50 * 49 / 2)
	interPairs := float64(200*199/2) - intraPairs
	if intra == 0 {
		t.Fatal("no intra-community edges generated")
	}
	intraRate := float64(intra) / intraPairs
	interRate := float64(inter) / interPairs
	if intraRate < 10*interRate {
		t.Errorf("community structure too weak: intra rate %.4f inter rate %.4f", intraRate, interRate)
	}
	if math.Abs(intraRate-0.3) > 0.1 {
		t.Errorf("intra rate %.3f far from requested 0.3", intraRate)
	}
}

func TestWattsStrogatz(t *testing.T) {
	g := WattsStrogatz(100, 6, 0.1, 3)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.AvgDegree() < 4 || g.AvgDegree() > 7 {
		t.Errorf("avg degree %.2f outside lattice expectation", g.AvgDegree())
	}
}

func TestPrimitives(t *testing.T) {
	if g := Star(10); g.MaxDegree() != 9 || g.NumEdges() != 9 {
		t.Errorf("Star: max=%d |E|=%d", g.MaxDegree(), g.NumEdges())
	}
	if g := Clique(6); g.NumEdges() != 15 || g.MaxDegree() != 5 {
		t.Errorf("Clique: |E|=%d max=%d", g.NumEdges(), g.MaxDegree())
	}
	if g := Path(5); g.NumEdges() != 4 || g.MaxDegree() != 2 {
		t.Errorf("Path: |E|=%d max=%d", g.NumEdges(), g.MaxDegree())
	}
}

func TestCliqueChain(t *testing.T) {
	g := CliqueChain(3, 4)
	if g.NumVertices() != 12 {
		t.Fatalf("|V| = %d, want 12", g.NumVertices())
	}
	// 3 K4s (6 edges each) + 2 bridges.
	if g.NumEdges() != 20 {
		t.Fatalf("|E| = %d, want 20", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	_, comps := g.ConnectedComponents()
	if comps != 1 {
		t.Errorf("chain should be connected, got %d components", comps)
	}
}

func TestPairFromIndex(t *testing.T) {
	n := int32(5)
	idx := int64(0)
	for u := int32(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			gu, gv := pairFromIndex(idx, n)
			if gu != u || gv != v {
				t.Fatalf("pairFromIndex(%d) = (%d,%d), want (%d,%d)", idx, gu, gv, u, v)
			}
			idx++
		}
	}
}

func TestGeometricSkipAlwaysPositive(t *testing.T) {
	f := func(seed int64) bool {
		g := ErdosRenyi(20, 30, seed)
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Every generator must be deterministic given its seed — identical CSR
// arrays across repeated invocations. (A previous version of Roll leaked
// Go's randomized map iteration order into the preferential-attachment
// stream, producing a different graph per process run; this test pins the
// fix.)
func TestGeneratorsDeterministic(t *testing.T) {
	gens := map[string]func() *graph.Graph{
		"er":   func() *graph.Graph { return ErdosRenyi(200, 600, 9) },
		"roll": func() *graph.Graph { return Roll(500, 8, 9) },
		"rmat": func() *graph.Graph { return RMAT(9, 2000, 0.57, 0.19, 0.19, 9) },
		"pp":   func() *graph.Graph { return PlantedPartition(5, 40, 0.3, 0.01, 9) },
		"ws":   func() *graph.Graph { return WattsStrogatz(200, 6, 0.2, 9) },
	}
	for name, gf := range gens {
		name, gf := name, gf
		t.Run(name, func(t *testing.T) {
			a, b := gf(), gf()
			if len(a.Dst) != len(b.Dst) {
				t.Fatalf("%s: different edge counts across runs", name)
			}
			for i := range a.Dst {
				if a.Dst[i] != b.Dst[i] {
					t.Fatalf("%s: adjacency differs at %d", name, i)
				}
			}
			for i := range a.Off {
				if a.Off[i] != b.Off[i] {
					t.Fatalf("%s: offsets differ at %d", name, i)
				}
			}
		})
	}
}

// Property: every generator yields structurally valid graphs for arbitrary
// seeds.
func TestGeneratorsValidQuick(t *testing.T) {
	gens := map[string]func(seed int64) *graph.Graph{
		"er":   func(s int64) *graph.Graph { return ErdosRenyi(60, 120, s) },
		"roll": func(s int64) *graph.Graph { return Roll(200, 6, s) },
		"rmat": func(s int64) *graph.Graph { return RMAT(8, 600, 0.55, 0.2, 0.2, s) },
		"pp":   func(s int64) *graph.Graph { return PlantedPartition(3, 20, 0.4, 0.02, s) },
		"ws":   func(s int64) *graph.Graph { return WattsStrogatz(80, 4, 0.2, s) },
	}
	for name, gf := range gens {
		gf := gf
		t.Run(name, func(t *testing.T) {
			f := func(seed int64) bool {
				return gf(seed).Validate() == nil
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
				t.Error(err)
			}
		})
	}
}
