// Package gen provides deterministic synthetic graph generators used to
// build surrogate workloads for the paper's datasets.
//
// The paper evaluates on four SNAP/WebGraph real-world graphs (Table 1) and
// four 1-billion-edge ROLL scale-free graphs with controlled average degree
// (Table 2). Neither is available offline at this scale, so the experiment
// harness substitutes graphs from this package; see DESIGN.md §2 for the
// substitution rationale.
//
// All generators are deterministic given their seed, so experiments are
// reproducible run-to-run.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"ppscan/graph"
)

// ErdosRenyi generates a G(n, m) uniform random graph: m undirected edges
// sampled uniformly (duplicates and self loops are resampled).
func ErdosRenyi(n int32, m int64, seed int64) *graph.Graph {
	if n < 2 {
		g, _ := graph.FromEdges(maxi32(n, 0), nil)
		return g
	}
	rng := rand.New(rand.NewSource(seed))
	type key = int64
	seen := make(map[key]struct{}, m)
	edges := make([]graph.Edge, 0, m)
	maxEdges := int64(n) * int64(n-1) / 2
	if m > maxEdges {
		m = maxEdges
	}
	for int64(len(edges)) < m {
		u := int32(rng.Intn(int(n)))
		v := int32(rng.Intn(int(n)))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		k := int64(u)*int64(n) + int64(v)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		panic(fmt.Sprintf("gen: ErdosRenyi produced invalid edges: %v", err))
	}
	return g
}

// Roll generates a scale-free graph in the family produced by the ROLL
// generator [Hadian et al., SIGMOD 2016] used in the paper's Table 2: a
// Barabási–Albert preferential-attachment process in which each new vertex
// attaches to k = avgDegree/2 existing vertices chosen proportionally to
// their current degree. Holding |E| = n*k constant while varying avgDegree
// mirrors the paper's ROLL-d40..d160 construction.
//
// Preferential attachment is implemented with the standard repeated-endpoint
// trick: targets are drawn uniformly from the running endpoint list, which
// is equivalent to degree-proportional sampling.
func Roll(n int32, avgDegree int32, seed int64) *graph.Graph {
	k := int(avgDegree / 2)
	if k < 1 {
		k = 1
	}
	if int32(k) >= n {
		k = int(n) - 1
	}
	rng := rand.New(rand.NewSource(seed))
	// endpoints holds every edge endpoint ever created; sampling uniformly
	// from it is degree-proportional sampling.
	endpoints := make([]int32, 0, 2*int(n)*k)
	edges := make([]graph.Edge, 0, int(n)*k)
	// Seed clique over the first k+1 vertices.
	m0 := int32(k + 1)
	if m0 > n {
		m0 = n
	}
	for u := int32(0); u < m0; u++ {
		for v := u + 1; v < m0; v++ {
			edges = append(edges, graph.Edge{U: u, V: v})
			endpoints = append(endpoints, u, v)
		}
	}
	targets := make(map[int32]struct{}, k)
	ordered := make([]int32, 0, k)
	for u := m0; u < n; u++ {
		clear(targets)
		ordered = ordered[:0]
		// Pick k distinct targets degree-proportionally. The insertion
		// order is recorded separately: iterating the map directly would
		// feed Go's randomized map order back into the endpoint stream and
		// make the "deterministic" generator produce a different graph on
		// every run.
		for len(targets) < k {
			t := endpoints[rng.Intn(len(endpoints))]
			if _, dup := targets[t]; dup {
				continue
			}
			targets[t] = struct{}{}
			ordered = append(ordered, t)
		}
		for _, t := range ordered {
			edges = append(edges, graph.Edge{U: u, V: t})
			endpoints = append(endpoints, u, t)
		}
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		panic(fmt.Sprintf("gen: Roll produced invalid edges: %v", err))
	}
	return g
}

// RMAT generates a graph with the recursive-matrix (Kronecker-style) edge
// distribution of Chakrabarti et al., producing the heavy-tailed degree
// skew characteristic of web and social graphs. scale is log2 of the vertex
// count; m undirected edges are generated (duplicates collapse, so the
// resulting edge count can be slightly lower).
func RMAT(scale int, m int64, a, b, c float64, seed int64) *graph.Graph {
	n := int32(1) << scale
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, m)
	for i := int64(0); i < m; i++ {
		var u, v int32
		for bit := scale - 1; bit >= 0; bit-- {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: no bits set
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u != v {
			edges = append(edges, graph.Edge{U: u, V: v})
		}
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		panic(fmt.Sprintf("gen: RMAT produced invalid edges: %v", err))
	}
	return g
}

// PlantedPartition generates a community-structured graph: numComm
// communities of commSize vertices; each intra-community edge exists with
// probability pIn and each inter-community edge with probability pOut.
// Sampling uses the geometric skip method so generation is O(|E|) rather
// than O(|V|^2): intra-community pairs are walked per community, and
// inter-community pairs are walked globally (same-community hits of the
// global walk are filtered out, which leaves each inter pair Bernoulli(pOut)
// exactly).
func PlantedPartition(numComm, commSize int32, pIn, pOut float64, seed int64) *graph.Graph {
	n := numComm * commSize
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	comm := func(v int32) int32 { return v / commSize }
	// Intra-community edges: walk each community's local pair space.
	if pIn > 0 {
		localPairs := int64(commSize) * int64(commSize-1) / 2
		for c := int32(0); c < numComm; c++ {
			base := c * commSize
			idx := int64(-1)
			for {
				idx += geometricSkip(rng, pIn)
				if idx >= localPairs {
					break
				}
				u, v := pairFromIndex(idx, commSize)
				edges = append(edges, graph.Edge{U: base + u, V: base + v})
			}
		}
	}
	// Inter-community edges: walk the global pair space and drop
	// same-community hits.
	if pOut > 0 {
		total := int64(n) * int64(n-1) / 2
		idx := int64(-1)
		for {
			idx += geometricSkip(rng, pOut)
			if idx >= total {
				break
			}
			u, v := pairFromIndex(idx, n)
			if comm(u) != comm(v) {
				edges = append(edges, graph.Edge{U: u, V: v})
			}
		}
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		panic(fmt.Sprintf("gen: PlantedPartition produced invalid edges: %v", err))
	}
	return g
}

// geometricSkip returns the 1-based gap until the next success of a
// Bernoulli(p) process.
func geometricSkip(rng *rand.Rand, p float64) int64 {
	if p >= 1 {
		return 1
	}
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	// 1 + floor(log(u)/log(1-p))
	s := int64(math.Log(u)/math.Log(1-p)) + 1
	if s < 1 {
		s = 1
	}
	return s
}

// pairFromIndex maps a linear index in [0, n*(n-1)/2) to the lexicographic
// pair (u, v) with u < v, in O(1) via the row-offset quadratic
// offset(u) = u*n - u*(u+1)/2.
func pairFromIndex(idx int64, n int32) (int32, int32) {
	nf := float64(n)
	// Solve offset(u) <= idx: u ≈ n - 0.5 - sqrt((n-0.5)^2 - 2*idx).
	u := int64(nf - 0.5 - math.Sqrt((nf-0.5)*(nf-0.5)-2*float64(idx)))
	if u < 0 {
		u = 0
	}
	offset := func(u int64) int64 { return u*int64(n) - u*(u+1)/2 }
	// Fix up float error (at most a step or two).
	for u > 0 && offset(u) > idx {
		u--
	}
	for offset(u+1) <= idx {
		u++
	}
	v := u + 1 + (idx - offset(u))
	return int32(u), int32(v)
}

// WattsStrogatz generates a small-world ring lattice: each vertex connects
// to its k nearest neighbors on a ring, then each edge is rewired with
// probability beta.
func WattsStrogatz(n int32, k int32, beta float64, seed int64) *graph.Graph {
	if k >= n {
		k = n - 1
	}
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	for u := int32(0); u < n; u++ {
		for j := int32(1); j <= k/2; j++ {
			v := (u + j) % n
			if rng.Float64() < beta {
				// Rewire to a uniform random target.
				v = int32(rng.Intn(int(n)))
			}
			if v != u {
				edges = append(edges, graph.Edge{U: u, V: v})
			}
		}
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		panic(fmt.Sprintf("gen: WattsStrogatz produced invalid edges: %v", err))
	}
	return g
}

// Star returns a star graph with one hub and n-1 leaves.
func Star(n int32) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1)
	for v := int32(1); v < n; v++ {
		edges = append(edges, graph.Edge{U: 0, V: v})
	}
	g, _ := graph.FromEdges(n, edges)
	return g
}

// Clique returns the complete graph K_n.
func Clique(n int32) *graph.Graph {
	var edges []graph.Edge
	for u := int32(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, graph.Edge{U: u, V: v})
		}
	}
	g, _ := graph.FromEdges(n, edges)
	return g
}

// Path returns the path graph P_n.
func Path(n int32) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1)
	for u := int32(0); u+1 < n; u++ {
		edges = append(edges, graph.Edge{U: u, V: u + 1})
	}
	g, _ := graph.FromEdges(n, edges)
	return g
}

// CliqueChain returns c cliques of size s, consecutive cliques joined by a
// single bridge edge. It is a useful worst/best-case testbed: with suitable
// (eps, mu), each clique is exactly one cluster and the bridge endpoints are
// hubs.
func CliqueChain(c, s int32) *graph.Graph {
	var edges []graph.Edge
	for ci := int32(0); ci < c; ci++ {
		base := ci * s
		for u := int32(0); u < s; u++ {
			for v := u + 1; v < s; v++ {
				edges = append(edges, graph.Edge{U: base + u, V: base + v})
			}
		}
		if ci+1 < c {
			edges = append(edges, graph.Edge{U: base + s - 1, V: base + s})
		}
	}
	g, _ := graph.FromEdges(c*s, edges)
	return g
}

func maxi32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}
