package expharness

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestBarChart(t *testing.T) {
	var buf bytes.Buffer
	barChart(&buf, "demo", []string{"a", "bb"}, []float64{10, 5}, "ms", 20)
	out := buf.String()
	if !strings.Contains(out, "demo") {
		t.Errorf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	// Bar of a (max) must be twice bar of bb.
	aBars := strings.Count(lines[1], "#")
	bBars := strings.Count(lines[2], "#")
	if aBars != 20 || bBars != 10 {
		t.Errorf("bar lengths = %d, %d", aBars, bBars)
	}
	// Zero/negative max handled.
	buf.Reset()
	barChart(&buf, "zeros", []string{"x"}, []float64{0}, "", 0)
	if !strings.Contains(buf.String(), "x") {
		t.Errorf("zero chart broken")
	}
}

func TestChartOverall(t *testing.T) {
	rows := []OverallPoint{
		{Dataset: "d1", Algo: AlgoSCAN, Eps: "0.2", Runtime: 10 * time.Millisecond},
		{Dataset: "d1", Algo: AlgoPPSCAN, Eps: "0.2", Runtime: 2 * time.Millisecond},
		{Dataset: "d2", Algo: AlgoSCAN, Eps: "0.4", Runtime: 7 * time.Millisecond},
	}
	var buf bytes.Buffer
	ChartOverall(&buf, rows)
	out := buf.String()
	for _, want := range []string{"d1 eps=0.2", "d2 eps=0.4", "ppSCAN", "SCAN"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
}

func TestChartBreakdown(t *testing.T) {
	rows := []BreakdownPoint{
		{Dataset: "d", Algorithm: "SCAN", Eps: "0.2",
			Similarity: 8 * time.Millisecond, Total: 10 * time.Millisecond},
		{Dataset: "d", Algorithm: "pSCAN", Eps: "0.2",
			Similarity: 3 * time.Millisecond, Reduction: 3 * time.Millisecond, Total: 10 * time.Millisecond},
		{Dataset: "zero", Algorithm: "x", Eps: "0.2"}, // zero total skipped
	}
	var buf bytes.Buffer
	ChartBreakdown(&buf, rows)
	out := buf.String()
	if !strings.Contains(out, "legend") || !strings.Contains(out, "SSS") {
		t.Errorf("breakdown chart unexpected:\n%s", out)
	}
	if strings.Contains(out, "zero") {
		t.Errorf("zero-total row should be skipped")
	}
}

func TestChartScale(t *testing.T) {
	rows := []ScalePoint{
		{Dataset: "d", Workers: 1, Total: 10 * time.Millisecond},
		{Dataset: "d", Workers: 4, Total: 9 * time.Millisecond},
	}
	var buf bytes.Buffer
	ChartScale(&buf, rows)
	if !strings.Contains(buf.String(), "4 workers") {
		t.Errorf("scale chart missing workers row:\n%s", buf.String())
	}
}
