package expharness

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Terminal bar charts for eyeballing figure shapes directly from
// `cmd/experiments -charts`, without external plotting.

// barChart renders a horizontal bar chart: one row per (label, value),
// scaled to width characters at the maximum value.
func barChart(w io.Writer, title string, labels []string, values []float64, unit string, width int) {
	if width < 10 {
		width = 40
	}
	fmt.Fprintf(w, "-- %s --\n", title)
	var maxV float64
	for _, v := range values {
		if v > maxV {
			maxV = v
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	for i, l := range labels {
		n := int(values[i] / maxV * float64(width))
		if n < 0 {
			n = 0
		}
		if values[i] > 0 && n == 0 {
			n = 1
		}
		fmt.Fprintf(w, "%-*s |%s%s %.3g%s\n", labelW, l,
			strings.Repeat("#", n), strings.Repeat(" ", width-n), values[i], unit)
	}
}

// ChartOverall renders Figure 2/3 rows as one runtime bar chart per
// (dataset, eps) group, preserving algorithm order.
func ChartOverall(w io.Writer, rows []OverallPoint) {
	type key struct {
		ds, eps string
	}
	var order []key
	groups := map[key][]OverallPoint{}
	for _, r := range rows {
		k := key{r.Dataset, r.Eps}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], r)
	}
	for _, k := range order {
		g := groups[k]
		labels := make([]string, len(g))
		values := make([]float64, len(g))
		for i, r := range g {
			labels[i] = string(r.Algo)
			values[i] = float64(r.Runtime) / float64(time.Millisecond)
		}
		barChart(w, fmt.Sprintf("%s eps=%s (runtime)", k.ds, k.eps), labels, values, "ms", 48)
	}
}

// ChartBreakdown renders Figure 1 rows as stacked-fraction summaries: for
// each bar, the similarity / reduction / other shares.
func ChartBreakdown(w io.Writer, rows []BreakdownPoint) {
	for _, r := range rows {
		total := float64(r.Total)
		if total <= 0 {
			continue
		}
		simN := int(float64(r.Similarity) / total * 40)
		redN := int(float64(r.Reduction) / total * 40)
		othN := 40 - simN - redN
		if othN < 0 {
			othN = 0
		}
		fmt.Fprintf(w, "%-16s %-6s eps=%-4s [%s%s%s] %s\n",
			r.Dataset, r.Algorithm, r.Eps,
			strings.Repeat("S", simN), strings.Repeat("R", redN), strings.Repeat(".", othN),
			rd(r.Total))
	}
	fmt.Fprintln(w, "legend: S=similarity evaluation, R=workload reduction, .=other")
}

// ChartScale renders Figure 6 rows as a per-dataset worker/runtime chart.
func ChartScale(w io.Writer, rows []ScalePoint) {
	var order []string
	groups := map[string][]ScalePoint{}
	for _, r := range rows {
		if _, ok := groups[r.Dataset]; !ok {
			order = append(order, r.Dataset)
		}
		groups[r.Dataset] = append(groups[r.Dataset], r)
	}
	for _, ds := range order {
		g := groups[ds]
		labels := make([]string, len(g))
		values := make([]float64, len(g))
		for i, r := range g {
			labels[i] = fmt.Sprintf("%d workers", r.Workers)
			values[i] = float64(r.Total) / float64(time.Millisecond)
		}
		barChart(w, ds+" (total runtime by workers)", labels, values, "ms", 48)
	}
}
