package expharness

import (
	"fmt"
	"time"

	"ppscan/internal/core"
	"ppscan/internal/dataset"
	"ppscan/internal/distscan"
	"ppscan/internal/intersect"
	"ppscan/internal/pscan"
	"ppscan/internal/result"
)

// AblationPoint is one measured variant of one design choice.
type AblationPoint struct {
	// Group names the design choice ("scheduler", "task-threshold",
	// "pscan-order", "ppscan-kernel").
	Group string
	// Variant names the alternative within the group.
	Variant string
	Dataset string
	Runtime time.Duration
	// CompSimCalls is the similarity workload of the variant (0 when not
	// meaningful for the group).
	CompSimCalls int64
	// CommBytes is the partition communication volume (dist-partitions
	// group only).
	CommBytes int64
}

// Ablations measures the design-choice alternatives DESIGN.md calls out:
//
//   - scheduler: degree-based dynamic tasks (Algorithm 5) vs static blocks;
//   - task-threshold: the paper's 32768 degree-sum granularity vs finer
//     and coarser settings (§4.4 tuning);
//   - pscan-order: pSCAN's effective-degree priority vs static orders
//     (the §4.1 justification for dropping the priority queue);
//   - ppscan-kernel: each set-intersection kernel inside full ppSCAN runs.
//
// All runs use ε=0.2, µ=5 (the paper's heavy-workload setting) on the
// webbase and twitter surrogates (the strong-pruning and heavy-tail
// extremes).
func Ablations(cfg Config) []AblationPoint {
	cfg = cfg.norm()
	th := mustTh("0.2", DefaultMu)
	datasets := []string{"webbase-sim", "twitter-sim"}
	if cfg.Quick {
		datasets = datasets[:1]
	}
	var out []AblationPoint
	add := func(group, variant, ds string, r *result.Result) {
		out = append(out, AblationPoint{
			Group: group, Variant: variant, Dataset: ds,
			Runtime: r.Stats.Total, CompSimCalls: r.Stats.CompSimCalls,
			CommBytes: r.Stats.CommBytes,
		})
	}
	for _, ds := range datasets {
		g := dataset.MustLoad(ds, cfg.Scale)

		// Scheduler.
		add("scheduler", "dynamic", ds, cfg.bestOf(func() *result.Result {
			return core.Run(g, th, core.Options{Kernel: intersect.PivotBlock16, Workers: cfg.Workers})
		}))
		add("scheduler", "static", ds, cfg.bestOf(func() *result.Result {
			return core.Run(g, th, core.Options{Kernel: intersect.PivotBlock16, Workers: cfg.Workers, StaticScheduling: true})
		}))

		// Task-granularity threshold.
		for _, thr := range []int64{1 << 10, 1 << 15, 1 << 20} {
			thr := thr
			add("task-threshold", fmt.Sprintf("%d", thr), ds, cfg.bestOf(func() *result.Result {
				return core.Run(g, th, core.Options{Kernel: intersect.PivotBlock16, Workers: cfg.Workers, DegreeThreshold: thr})
			}))
		}

		// pSCAN processing order.
		for _, ord := range []pscan.Order{pscan.OrderEffectiveDegree, pscan.OrderStaticDegree, pscan.OrderNatural} {
			ord := ord
			add("pscan-order", ord.String(), ds, cfg.bestOf(func() *result.Result {
				return pscan.Run(g, th, pscan.Options{Kernel: intersect.MergeEarly, Order: ord})
			}))
		}

		// Kernels inside ppSCAN.
		for _, k := range intersect.Kinds() {
			k := k
			add("ppscan-kernel", k.String(), ds, cfg.bestOf(func() *result.Result {
				return core.Run(g, th, core.Options{Kernel: k, Workers: cfg.Workers})
			}))
		}

		// Distributed partitioning: the §3.3 communication overhead, made
		// measurable (bytes crossing partitions grow with the cut).
		for _, parts := range []int{1, 2, 4, 8} {
			parts := parts
			add("dist-partitions", fmt.Sprintf("p=%d", parts), ds, cfg.bestOf(func() *result.Result {
				return distscan.Run(g, th, distscan.Options{Partitions: parts, Kernel: intersect.MergeEarly})
			}))
		}
	}
	return out
}

// PrintAblations prints the ablation series grouped by design choice.
func PrintAblations(cfg Config, rows []AblationPoint) {
	cfg = cfg.norm()
	fmt.Fprintln(cfg.Out, "== Ablations: design-choice alternatives (eps=0.2, mu=5) ==")
	fmt.Fprintf(cfg.Out, "%-16s %-18s %-16s %12s %14s %12s\n",
		"group", "variant", "dataset", "runtime", "CompSim calls", "comm bytes")
	for _, r := range rows {
		fmt.Fprintf(cfg.Out, "%-16s %-18s %-16s %12s %14d %12d\n",
			r.Group, r.Variant, r.Dataset, rd(r.Runtime), r.CompSimCalls, r.CommBytes)
	}
}
