package expharness

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"ppscan/internal/result"
)

// quickCfg keeps harness tests fast: tiny datasets, reduced grids.
func quickCfg(buf *bytes.Buffer) Config {
	return Config{Scale: 0.03, Workers: 2, Quick: true, Out: buf}
}

func TestTables(t *testing.T) {
	var buf bytes.Buffer
	cfg := quickCfg(&buf)
	t1 := Table1(cfg)
	if len(t1) != 4 {
		t.Fatalf("Table1 rows = %d", len(t1))
	}
	t2 := Table2(cfg)
	if len(t2) != 4 {
		t.Fatalf("Table2 rows = %d", len(t2))
	}
	PrintStats(cfg, "Table 1", t1)
	PrintStats(cfg, "Table 2", t2)
	out := buf.String()
	for _, want := range []string{"orkut-sim", "ROLL-d160", "max d"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed stats missing %q", want)
		}
	}
}

func TestFig1Breakdown(t *testing.T) {
	var buf bytes.Buffer
	cfg := quickCfg(&buf)
	rows := Fig1(cfg)
	// 3 datasets x 2 algorithms x 2 eps (quick grid).
	if len(rows) != 12 {
		t.Fatalf("Fig1 rows = %d, want 12", len(rows))
	}
	for _, r := range rows {
		if r.Total <= 0 {
			t.Errorf("%s/%s eps=%s: zero total", r.Dataset, r.Algorithm, r.Eps)
		}
		if r.Similarity+r.Reduction > r.Total {
			t.Errorf("%s/%s: breakdown exceeds total", r.Dataset, r.Algorithm)
		}
		if r.Algorithm == "SCAN" && r.Reduction != 0 {
			t.Errorf("SCAN should have no reduction component")
		}
	}
	PrintFig1(cfg, rows)
	if !strings.Contains(buf.String(), "similarity") {
		t.Errorf("Fig1 print missing header")
	}
}

func TestOverallComparison(t *testing.T) {
	var buf bytes.Buffer
	cfg := quickCfg(&buf)
	rows := Fig3(cfg)
	// 4 datasets x 2 eps x 5 algorithms.
	if len(rows) != 40 {
		t.Fatalf("Fig3 rows = %d, want 40", len(rows))
	}
	// pSCAN rows must have speedup exactly 1.
	for _, r := range rows {
		if r.Algo == AlgoPSCAN && (r.SpeedupVsPSCAN < 0.999 || r.SpeedupVsPSCAN > 1.001) {
			t.Errorf("pSCAN self-speedup = %f", r.SpeedupVsPSCAN)
		}
		if r.Runtime <= 0 {
			t.Errorf("%s/%s: zero runtime", r.Dataset, r.Algo)
		}
	}
	PrintOverall(cfg, ProfileKNL, rows)
	if !strings.Contains(buf.String(), "Figure 3") {
		t.Errorf("print missing title")
	}
}

func TestFig4Invocations(t *testing.T) {
	var buf bytes.Buffer
	cfg := quickCfg(&buf)
	rows := Fig4(cfg)
	if len(rows) != 8 { // 4 datasets x 2 eps
		t.Fatalf("Fig4 rows = %d", len(rows))
	}
	for _, r := range rows {
		// Both prune-based algorithms compute each edge at most once.
		if r.NormalizedPSCAN() > 1.0001 || r.NormalizedPPSCAN() > 1.0001 {
			t.Errorf("%s eps=%s: normalized invocations exceed 1 (%f / %f)",
				r.Dataset, r.Eps, r.NormalizedPSCAN(), r.NormalizedPPSCAN())
		}
		// "Similar amount of work": within a factor 2 plus slack for tiny
		// graphs.
		lo, hi := r.NormalizedPSCAN()*0.4-0.05, r.NormalizedPSCAN()*2.5+0.05
		if n := r.NormalizedPPSCAN(); n < lo || n > hi {
			t.Errorf("%s eps=%s: ppSCAN %.3f far from pSCAN %.3f",
				r.Dataset, r.Eps, n, r.NormalizedPSCAN())
		}
	}
	PrintFig4(cfg, rows)
}

func TestFig5Vectorization(t *testing.T) {
	var buf bytes.Buffer
	cfg := quickCfg(&buf)
	rows := Fig5(cfg)
	if len(rows) != 16 { // 2 profiles x 4 datasets x 2 eps
		t.Fatalf("Fig5 rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.CheckCoreNO < 0 || r.CheckCoreVec < 0 {
			t.Errorf("negative stage time")
		}
	}
	PrintFig5(cfg, rows)
}

func TestFig6Scalability(t *testing.T) {
	var buf bytes.Buffer
	cfg := quickCfg(&buf)
	rows := Fig6(cfg)
	if len(rows) != 8 { // 4 datasets x 2 worker counts (quick grid)
		t.Fatalf("Fig6 rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Workers == 1 && (r.SelfSpeedup < 0.999 || r.SelfSpeedup > 1.001) {
			t.Errorf("1-worker self-speedup = %f", r.SelfSpeedup)
		}
		var sum time.Duration
		for _, p := range r.Phases {
			sum += p
		}
		if sum <= 0 || sum > 2*r.Total+time.Millisecond {
			t.Errorf("%s w=%d: phase sum %v vs total %v", r.Dataset, r.Workers, sum, r.Total)
		}
	}
	PrintFig6(cfg, rows)
}

func TestFig7Robustness(t *testing.T) {
	var buf bytes.Buffer
	cfg := quickCfg(&buf)
	rows := Fig7(cfg)
	if len(rows) != 16 { // 4 datasets x 2 mus x 2 eps
		t.Fatalf("Fig7 rows = %d", len(rows))
	}
	PrintFig7(cfg, rows)
}

func TestFig8Roll(t *testing.T) {
	var buf bytes.Buffer
	cfg := quickCfg(&buf)
	rows := Fig8(cfg)
	if len(rows) != 8 { // 1 profile (quick) x 4 datasets x 2 eps
		t.Fatalf("Fig8 rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.SelfSpeedup <= 0 {
			t.Errorf("%s: non-positive self speedup", r.Dataset)
		}
	}
	PrintFig8(cfg, rows)
}

func TestRegistryCoversEverything(t *testing.T) {
	exps := Experiments()
	if len(exps) != 11 {
		t.Fatalf("registry has %d experiments, want 11 (2 tables + 8 figures + ablations)", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Description == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, err := Lookup("fig4"); err != nil {
		t.Errorf("Lookup(fig4): %v", err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Errorf("Lookup(nope) should fail")
	}
}

func TestRegistryRunsSmoke(t *testing.T) {
	// Every registered experiment must run end-to-end at tiny scale.
	if testing.Short() {
		t.Skip("smoke run of all experiments skipped in -short")
	}
	var buf bytes.Buffer
	cfg := Config{Scale: 0.02, Workers: 2, Quick: true, Out: &buf, Repeats: 1}
	for _, e := range Experiments() {
		e.Run(cfg)
	}
	if buf.Len() == 0 {
		t.Errorf("experiments produced no output")
	}
}

func TestAblations(t *testing.T) {
	var buf bytes.Buffer
	cfg := quickCfg(&buf)
	rows := Ablations(cfg)
	if len(rows) != 19 {
		t.Fatalf("ablation rows = %d, want 19", len(rows))
	}
	groups := map[string]int{}
	for _, r := range rows {
		groups[r.Group]++
		if r.Runtime <= 0 {
			t.Errorf("%s/%s: zero runtime", r.Group, r.Variant)
		}
	}
	want := map[string]int{"scheduler": 2, "task-threshold": 3, "pscan-order": 3, "ppscan-kernel": 7, "dist-partitions": 4}
	for g, n := range want {
		if groups[g] != n {
			t.Errorf("group %s has %d rows, want %d", g, groups[g], n)
		}
	}
	PrintAblations(cfg, rows)
	if !strings.Contains(buf.String(), "scheduler") {
		t.Errorf("ablation print missing group")
	}
}

func TestBestOfPicksMinimum(t *testing.T) {
	cfg := Config{Repeats: 3}.norm()
	i := 0
	durations := []time.Duration{30, 10, 20}
	r := cfg.bestOf(func() *result.Result {
		res := &result.Result{}
		res.Stats.Total = durations[i]
		i++
		return res
	})
	if r.Stats.Total != 10 {
		t.Errorf("bestOf picked %v", r.Stats.Total)
	}
}

func TestConfigNorm(t *testing.T) {
	c := Config{}.norm()
	if c.Scale != 1.0 || c.Workers < 1 || c.Repeats != 1 || c.Out == nil {
		t.Errorf("norm = %+v", c)
	}
}

func TestProfileString(t *testing.T) {
	if !strings.Contains(ProfileCPU.String(), "AVX2") || !strings.Contains(ProfileKNL.String(), "AVX512") {
		t.Errorf("profile names wrong")
	}
}
