// Package expharness regenerates every table and figure of the paper's
// evaluation section (§6) on the surrogate datasets, printing the same
// rows/series the paper reports and returning them as structured values for
// benchmarks and tests.
//
// Experiment index (see DESIGN.md §4 for the module mapping):
//
//	table1 — real-world graph statistics (Table 1)
//	table2 — ROLL graph statistics (Table 2)
//	fig1   — SCAN vs pSCAN time breakdown (Figure 1)
//	fig2   — overall comparison, CPU/AVX2 profile (Figure 2)
//	fig3   — overall comparison, KNL/AVX512 profile (Figure 3)
//	fig4   — set-intersection invocation reduction (Figure 4)
//	fig5   — vectorized kernel core-checking speedup (Figure 5)
//	fig6   — scalability and stage breakdown vs threads (Figure 6)
//	fig7   — robustness across µ and ε (Figure 7)
//	fig8   — ROLL graphs runtime and self-speedup (Figure 8)
//	ablations — design-choice alternatives (scheduler, threshold, order,
//	            kernels; see ablation.go)
package expharness

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"ppscan/graph"
	"ppscan/internal/anyscan"
	"ppscan/internal/core"
	"ppscan/internal/dataset"
	"ppscan/internal/intersect"
	"ppscan/internal/pscan"
	"ppscan/internal/result"
	"ppscan/internal/scan"
	"ppscan/internal/scanxp"
	"ppscan/internal/simdef"
)

// Config controls experiment size and output.
type Config struct {
	// Scale multiplies dataset sizes (1.0 = default surrogate size).
	Scale float64
	// Workers is the worker count for parallel algorithms; < 1 means
	// GOMAXPROCS.
	Workers int
	// Repeats is the number of runs per measurement; the best (minimum)
	// time is reported, as in the paper (§6.1). < 1 means 1.
	Repeats int
	// Out receives the printed series; nil means os.Stdout.
	Out io.Writer
	// Quick shrinks parameter grids for smoke tests.
	Quick bool
	// Charts additionally renders terminal bar charts for the figure
	// experiments that have a natural bar form (fig1, fig2, fig3, fig6).
	Charts bool
}

func (c Config) norm() Config {
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Repeats < 1 {
		c.Repeats = 1
	}
	if c.Out == nil {
		c.Out = os.Stdout
	}
	return c
}

// EpsGrid is the ε sweep used throughout the evaluation (µ fixed to 5).
var EpsGrid = []string{"0.2", "0.4", "0.6", "0.8"}

// MuGrid is Figure 7's µ sweep.
var MuGrid = []int32{2, 5, 10, 15}

// DefaultMu is the µ used by every experiment except Figure 7 (§6: "we fix
// µ = 5").
const DefaultMu = int32(5)

func (c Config) epsGrid() []string {
	if c.Quick {
		return []string{"0.2", "0.6"}
	}
	return EpsGrid
}

func mustTh(eps string, mu int32) simdef.Threshold {
	th, err := simdef.NewThreshold(eps, mu)
	if err != nil {
		panic(err)
	}
	return th
}

// bestOf runs f Repeats times and returns the result whose Stats.Total is
// minimal.
func (c Config) bestOf(f func() *result.Result) *result.Result {
	var best *result.Result
	for i := 0; i < c.Repeats; i++ {
		r := f()
		if best == nil || r.Stats.Total < best.Stats.Total {
			best = r
		}
	}
	return best
}

// ---------------------------------------------------------------------------
// Tables 1 and 2
// ---------------------------------------------------------------------------

// TableStats computes the statistics rows for the given dataset specs.
func TableStats(cfg Config, specs []dataset.Spec) []graph.Stats {
	cfg = cfg.norm()
	out := make([]graph.Stats, 0, len(specs))
	for _, s := range specs {
		g := dataset.MustLoad(s.Name, cfg.Scale)
		out = append(out, graph.ComputeStats(s.Name, g))
	}
	return out
}

// Table1 regenerates Table 1 (real-world surrogates).
func Table1(cfg Config) []graph.Stats { return TableStats(cfg, dataset.RealWorld()) }

// Table2 regenerates Table 2 (ROLL family).
func Table2(cfg Config) []graph.Stats { return TableStats(cfg, dataset.RollFamily()) }

// PrintStats prints a Table 1/2-shaped statistics table.
func PrintStats(cfg Config, title string, rows []graph.Stats) {
	cfg = cfg.norm()
	fmt.Fprintf(cfg.Out, "== %s ==\n", title)
	fmt.Fprintf(cfg.Out, "%-18s %12s %14s %8s %10s\n", "Name", "|V|", "|E|", "d", "max d")
	for _, r := range rows {
		fmt.Fprintf(cfg.Out, "%-18s %12d %14d %8.1f %10d\n",
			r.Name, r.NumVertices, r.NumEdges, r.AvgDegree, r.MaxDegree)
	}
}

// ---------------------------------------------------------------------------
// Figure 1: SCAN vs pSCAN time breakdown
// ---------------------------------------------------------------------------

// BreakdownPoint is one bar of Figure 1.
type BreakdownPoint struct {
	Dataset    string
	Algorithm  string
	Eps        string
	Similarity time.Duration // similarity evaluation
	Reduction  time.Duration // workload reduction computation
	Other      time.Duration // everything else
	Total      time.Duration
}

// Fig1 regenerates Figure 1: the time breakdown of SCAN and pSCAN with
// µ = 5 across ε on the breakdown datasets.
func Fig1(cfg Config) []BreakdownPoint {
	cfg = cfg.norm()
	var out []BreakdownPoint
	for _, spec := range dataset.Breakdown() {
		g := dataset.MustLoad(spec.Name, cfg.Scale)
		for _, algo := range []Algo{AlgoSCAN, AlgoPSCAN} {
			for _, eps := range cfg.epsGrid() {
				th := mustTh(eps, DefaultMu)
				r := cfg.bestOf(func() *result.Result {
					if algo == AlgoSCAN {
						return scan.Run(g, th, scan.Options{Kernel: intersect.Merge, Breakdown: true})
					}
					return pscan.Run(g, th, pscan.Options{Kernel: intersect.MergeEarly, Breakdown: true})
				})
				other := r.Stats.Total - r.Stats.SimilarityTime - r.Stats.ReductionTime
				if other < 0 {
					other = 0
				}
				out = append(out, BreakdownPoint{
					Dataset:    spec.Name,
					Algorithm:  r.Stats.Algorithm,
					Eps:        eps,
					Similarity: r.Stats.SimilarityTime,
					Reduction:  r.Stats.ReductionTime,
					Other:      other,
					Total:      r.Stats.Total,
				})
			}
		}
	}
	return out
}

// PrintFig1 prints the breakdown series.
func PrintFig1(cfg Config, rows []BreakdownPoint) {
	cfg = cfg.norm()
	fmt.Fprintln(cfg.Out, "== Figure 1: time breakdown of SCAN and pSCAN (mu=5) ==")
	fmt.Fprintf(cfg.Out, "%-18s %-6s %-5s %12s %12s %12s %12s\n",
		"dataset", "algo", "eps", "similarity", "reduction", "other", "total")
	for _, r := range rows {
		fmt.Fprintf(cfg.Out, "%-18s %-6s %-5s %12s %12s %12s %12s\n",
			r.Dataset, r.Algorithm, r.Eps,
			rd(r.Similarity), rd(r.Reduction), rd(r.Other), rd(r.Total))
	}
}

// ---------------------------------------------------------------------------
// Figures 2 and 3: overall comparison
// ---------------------------------------------------------------------------

// Algo names an algorithm configuration used by the harness.
type Algo string

// Harness algorithm configurations.
const (
	AlgoSCAN     Algo = "SCAN"
	AlgoPSCAN    Algo = "pSCAN"
	AlgoAnySCAN  Algo = "anySCAN"
	AlgoSCANXP   Algo = "SCAN-XP"
	AlgoPPSCAN   Algo = "ppSCAN"
	AlgoPPSCANNO Algo = "ppSCAN-NO"
)

// OverallPoint is one bar of Figures 2/3.
type OverallPoint struct {
	Dataset string
	Algo    Algo
	Eps     string
	Runtime time.Duration
	// SpeedupVsPSCAN is pSCAN's runtime divided by this algorithm's on the
	// same (dataset, eps); the paper's headline ratios.
	SpeedupVsPSCAN float64
}

// Profile selects the instruction-set profile: the CPU profile uses 8-lane
// blocks (AVX2) for vectorized kernels, the KNL profile 16-lane (AVX512).
type Profile int

// Profiles.
const (
	ProfileCPU Profile = iota
	ProfileKNL
)

func (p Profile) String() string {
	if p == ProfileKNL {
		return "KNL(AVX512/16-lane)"
	}
	return "CPU(AVX2/8-lane)"
}

func (p Profile) blockKernel() intersect.Kind {
	if p == ProfileKNL {
		return intersect.PivotBlock16
	}
	return intersect.PivotBlock8
}

// OverallComparison runs the Figure 2/3 experiment for one profile.
func OverallComparison(cfg Config, profile Profile) []OverallPoint {
	cfg = cfg.norm()
	algos := []Algo{AlgoSCAN, AlgoPSCAN, AlgoAnySCAN, AlgoSCANXP, AlgoPPSCAN}
	var out []OverallPoint
	for _, spec := range dataset.RealWorld() {
		g := dataset.MustLoad(spec.Name, cfg.Scale)
		for _, eps := range cfg.epsGrid() {
			th := mustTh(eps, DefaultMu)
			times := map[Algo]time.Duration{}
			for _, algo := range algos {
				r := cfg.bestOf(func() *result.Result {
					return runAlgoProfile(algo, g, th, cfg.Workers, profile)
				})
				times[algo] = r.Stats.Total
			}
			for _, algo := range algos {
				sp := 0.0
				if times[algo] > 0 {
					sp = float64(times[AlgoPSCAN]) / float64(times[algo])
				}
				out = append(out, OverallPoint{
					Dataset:        spec.Name,
					Algo:           algo,
					Eps:            eps,
					Runtime:        times[algo],
					SpeedupVsPSCAN: sp,
				})
			}
		}
	}
	return out
}

// Fig2 regenerates Figure 2 (CPU profile).
func Fig2(cfg Config) []OverallPoint { return OverallComparison(cfg, ProfileCPU) }

// Fig3 regenerates Figure 3 (KNL profile).
func Fig3(cfg Config) []OverallPoint { return OverallComparison(cfg, ProfileKNL) }

// PrintOverall prints a Figure 2/3 series.
func PrintOverall(cfg Config, profile Profile, rows []OverallPoint) {
	cfg = cfg.norm()
	fmt.Fprintf(cfg.Out, "== Figure %d: comparison with existing algorithms (%s, mu=5) ==\n",
		2+int(profile), profile)
	fmt.Fprintf(cfg.Out, "%-18s %-5s %-10s %12s %14s\n", "dataset", "eps", "algo", "runtime", "vs pSCAN")
	for _, r := range rows {
		fmt.Fprintf(cfg.Out, "%-18s %-5s %-10s %12s %13.2fx\n",
			r.Dataset, r.Eps, r.Algo, rd(r.Runtime), r.SpeedupVsPSCAN)
	}
}

// ---------------------------------------------------------------------------
// Figure 4: invocation reduction
// ---------------------------------------------------------------------------

// InvocationPoint is one pair of bars of Figure 4.
type InvocationPoint struct {
	Dataset string
	Eps     string
	// Edges is the undirected edge count used for normalization.
	Edges int64
	// PSCANCalls / PPSCANCalls are the CompSim invocation counts.
	PSCANCalls, PPSCANCalls int64
}

// NormalizedPSCAN returns pSCAN's invocations divided by |E|.
func (p InvocationPoint) NormalizedPSCAN() float64 {
	return float64(p.PSCANCalls) / float64(p.Edges)
}

// NormalizedPPSCAN returns ppSCAN's invocations divided by |E|.
func (p InvocationPoint) NormalizedPPSCAN() float64 {
	return float64(p.PPSCANCalls) / float64(p.Edges)
}

// Fig4 regenerates Figure 4: normalized set-intersection invocation counts
// of pSCAN and ppSCAN, µ = 5.
func Fig4(cfg Config) []InvocationPoint {
	cfg = cfg.norm()
	var out []InvocationPoint
	for _, spec := range dataset.RealWorld() {
		g := dataset.MustLoad(spec.Name, cfg.Scale)
		for _, eps := range cfg.epsGrid() {
			th := mustTh(eps, DefaultMu)
			ps := runAlgo(AlgoPSCAN, g, th, 1)
			pp := runAlgo(AlgoPPSCAN, g, th, cfg.Workers)
			out = append(out, InvocationPoint{
				Dataset:     spec.Name,
				Eps:         eps,
				Edges:       g.NumEdges(),
				PSCANCalls:  ps.Stats.CompSimCalls,
				PPSCANCalls: pp.Stats.CompSimCalls,
			})
		}
	}
	return out
}

// PrintFig4 prints the invocation-reduction series.
func PrintFig4(cfg Config, rows []InvocationPoint) {
	cfg = cfg.norm()
	fmt.Fprintln(cfg.Out, "== Figure 4: set-intersection invocation reduction (mu=5) ==")
	fmt.Fprintf(cfg.Out, "%-18s %-5s %14s %14s %10s %10s\n",
		"dataset", "eps", "pSCAN calls", "ppSCAN calls", "pSCAN/|E|", "ppSCAN/|E|")
	for _, r := range rows {
		fmt.Fprintf(cfg.Out, "%-18s %-5s %14d %14d %10.3f %10.3f\n",
			r.Dataset, r.Eps, r.PSCANCalls, r.PPSCANCalls,
			r.NormalizedPSCAN(), r.NormalizedPPSCAN())
	}
}

// ---------------------------------------------------------------------------
// Figure 5: vectorization improvement
// ---------------------------------------------------------------------------

// VecPoint is one bar of Figure 5.
type VecPoint struct {
	Dataset string
	Eps     string
	Profile Profile
	// CheckCoreNO / CheckCoreVec are the core-checking stage times of
	// ppSCAN-NO and ppSCAN.
	CheckCoreNO, CheckCoreVec time.Duration
}

// Speedup is the core-checking speedup of the vectorized kernel.
func (p VecPoint) Speedup() float64 {
	if p.CheckCoreVec <= 0 {
		return 0
	}
	return float64(p.CheckCoreNO) / float64(p.CheckCoreVec)
}

// Fig5 regenerates Figure 5: core-checking speedup of the pivot-based
// block-vectorized kernel over the scalar kernel, on both profiles.
func Fig5(cfg Config) []VecPoint {
	cfg = cfg.norm()
	var out []VecPoint
	for _, profile := range []Profile{ProfileCPU, ProfileKNL} {
		for _, spec := range dataset.RealWorld() {
			g := dataset.MustLoad(spec.Name, cfg.Scale)
			for _, eps := range cfg.epsGrid() {
				th := mustTh(eps, DefaultMu)
				no := cfg.bestOf(func() *result.Result {
					return core.Run(g, th, core.Options{Kernel: intersect.MergeEarly, Workers: cfg.Workers})
				})
				vec := cfg.bestOf(func() *result.Result {
					return core.Run(g, th, core.Options{Kernel: profile.blockKernel(), Workers: cfg.Workers})
				})
				out = append(out, VecPoint{
					Dataset:      spec.Name,
					Eps:          eps,
					Profile:      profile,
					CheckCoreNO:  no.Stats.PhaseTimes[result.PhaseCheckCore],
					CheckCoreVec: vec.Stats.PhaseTimes[result.PhaseCheckCore],
				})
			}
		}
	}
	return out
}

// PrintFig5 prints the vectorization series.
func PrintFig5(cfg Config, rows []VecPoint) {
	cfg = cfg.norm()
	fmt.Fprintln(cfg.Out, "== Figure 5: vectorized set-intersection core-checking speedup (mu=5) ==")
	fmt.Fprintf(cfg.Out, "%-18s %-5s %-20s %14s %14s %9s\n",
		"dataset", "eps", "profile", "scalar", "vectorized", "speedup")
	for _, r := range rows {
		fmt.Fprintf(cfg.Out, "%-18s %-5s %-20s %14s %14s %8.2fx\n",
			r.Dataset, r.Eps, r.Profile, rd(r.CheckCoreNO), rd(r.CheckCoreVec), r.Speedup())
	}
}

// ---------------------------------------------------------------------------
// Figure 6: scalability
// ---------------------------------------------------------------------------

// ScalePoint is one x-position of Figure 6 for one dataset.
type ScalePoint struct {
	Dataset string
	Workers int
	Phases  [result.NumPhases]time.Duration
	Total   time.Duration
	// SelfSpeedup is total time at 1 worker divided by total time here.
	SelfSpeedup float64
}

// WorkerGrid returns the thread counts of Figure 6 ({1..256} by powers of
// two, reduced under Quick).
func (c Config) WorkerGrid() []int {
	if c.Quick {
		return []int{1, 4}
	}
	return []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
}

// Fig6 regenerates Figure 6: per-stage time breakdown of ppSCAN vs the
// number of workers, ε = 0.2, µ = 5.
func Fig6(cfg Config) []ScalePoint {
	cfg = cfg.norm()
	th := mustTh("0.2", DefaultMu)
	var out []ScalePoint
	for _, spec := range dataset.RealWorld() {
		g := dataset.MustLoad(spec.Name, cfg.Scale)
		var base time.Duration
		for _, w := range cfg.WorkerGrid() {
			r := cfg.bestOf(func() *result.Result {
				return core.Run(g, th, core.Options{Kernel: intersect.PivotBlock16, Workers: w})
			})
			if w == 1 {
				base = r.Stats.Total
			}
			sp := 0.0
			if r.Stats.Total > 0 && base > 0 {
				sp = float64(base) / float64(r.Stats.Total)
			}
			out = append(out, ScalePoint{
				Dataset:     spec.Name,
				Workers:     w,
				Phases:      r.Stats.PhaseTimes,
				Total:       r.Stats.Total,
				SelfSpeedup: sp,
			})
		}
	}
	return out
}

// PrintFig6 prints the scalability series.
func PrintFig6(cfg Config, rows []ScalePoint) {
	cfg = cfg.norm()
	fmt.Fprintln(cfg.Out, "== Figure 6: scalability, stage breakdown vs workers (eps=0.2, mu=5) ==")
	fmt.Fprintf(cfg.Out, "%-18s %8s %12s %12s %12s %12s %12s %9s\n",
		"dataset", "workers", "pruning", "check-core", "cluster-core", "noncore", "total", "speedup")
	for _, r := range rows {
		fmt.Fprintf(cfg.Out, "%-18s %8d %12s %12s %12s %12s %12s %8.2fx\n",
			r.Dataset, r.Workers,
			rd(r.Phases[result.PhasePruning]), rd(r.Phases[result.PhaseCheckCore]),
			rd(r.Phases[result.PhaseClusterCore]), rd(r.Phases[result.PhaseClusterNonCore]),
			rd(r.Total), r.SelfSpeedup)
	}
}

// ---------------------------------------------------------------------------
// Figure 7: robustness across µ and ε
// ---------------------------------------------------------------------------

// RobustPoint is one line point of Figure 7.
type RobustPoint struct {
	Dataset string
	Eps     string
	Mu      int32
	Runtime time.Duration
}

// Fig7 regenerates Figure 7: ppSCAN runtime across µ ∈ {2,5,10,15} and ε.
func Fig7(cfg Config) []RobustPoint {
	cfg = cfg.norm()
	mus := MuGrid
	if cfg.Quick {
		mus = []int32{2, 5}
	}
	var out []RobustPoint
	for _, spec := range dataset.RealWorld() {
		g := dataset.MustLoad(spec.Name, cfg.Scale)
		for _, mu := range mus {
			for _, eps := range cfg.epsGrid() {
				r := cfg.bestOf(func() *result.Result {
					return core.Run(g, mustTh(eps, mu), core.Options{Kernel: intersect.PivotBlock16, Workers: cfg.Workers})
				})
				out = append(out, RobustPoint{Dataset: spec.Name, Eps: eps, Mu: mu, Runtime: r.Stats.Total})
			}
		}
	}
	return out
}

// PrintFig7 prints the robustness series.
func PrintFig7(cfg Config, rows []RobustPoint) {
	cfg = cfg.norm()
	fmt.Fprintln(cfg.Out, "== Figure 7: robustness of ppSCAN across mu and eps ==")
	fmt.Fprintf(cfg.Out, "%-18s %-5s %4s %12s\n", "dataset", "eps", "mu", "runtime")
	for _, r := range rows {
		fmt.Fprintf(cfg.Out, "%-18s %-5s %4d %12s\n", r.Dataset, r.Eps, r.Mu, rd(r.Runtime))
	}
}

// ---------------------------------------------------------------------------
// Figure 8: ROLL graphs
// ---------------------------------------------------------------------------

// RollPoint is one line point of Figure 8.
type RollPoint struct {
	Dataset     string
	Eps         string
	Profile     Profile
	Runtime     time.Duration
	SelfSpeedup float64 // over the 1-worker run at the same (dataset, eps)
}

// Fig8 regenerates Figure 8: ppSCAN runtime and self-speedup on the ROLL
// family, µ = 5, both profiles.
func Fig8(cfg Config) []RollPoint {
	cfg = cfg.norm()
	var out []RollPoint
	profiles := []Profile{ProfileCPU, ProfileKNL}
	if cfg.Quick {
		profiles = []Profile{ProfileKNL}
	}
	for _, profile := range profiles {
		for _, spec := range dataset.RollFamily() {
			g := dataset.MustLoad(spec.Name, cfg.Scale)
			for _, eps := range cfg.epsGrid() {
				th := mustTh(eps, DefaultMu)
				one := cfg.bestOf(func() *result.Result {
					return core.Run(g, th, core.Options{Kernel: profile.blockKernel(), Workers: 1})
				})
				par := cfg.bestOf(func() *result.Result {
					return core.Run(g, th, core.Options{Kernel: profile.blockKernel(), Workers: cfg.Workers})
				})
				sp := 0.0
				if par.Stats.Total > 0 {
					sp = float64(one.Stats.Total) / float64(par.Stats.Total)
				}
				out = append(out, RollPoint{
					Dataset:     spec.Name,
					Eps:         eps,
					Profile:     profile,
					Runtime:     par.Stats.Total,
					SelfSpeedup: sp,
				})
			}
		}
	}
	return out
}

// PrintFig8 prints the ROLL series.
func PrintFig8(cfg Config, rows []RollPoint) {
	cfg = cfg.norm()
	fmt.Fprintln(cfg.Out, "== Figure 8: ppSCAN on ROLL graphs (mu=5) ==")
	fmt.Fprintf(cfg.Out, "%-12s %-5s %-20s %12s %13s\n", "dataset", "eps", "profile", "runtime", "self-speedup")
	for _, r := range rows {
		fmt.Fprintf(cfg.Out, "%-12s %-5s %-20s %12s %12.2fx\n",
			r.Dataset, r.Eps, r.Profile, rd(r.Runtime), r.SelfSpeedup)
	}
}

// ---------------------------------------------------------------------------
// Registry and shared runner
// ---------------------------------------------------------------------------

// runAlgo executes a harness algorithm with its paper-faithful kernel.
func runAlgo(algo Algo, g *graph.Graph, th simdef.Threshold, workers int) *result.Result {
	return runAlgoProfile(algo, g, th, workers, ProfileKNL)
}

// runAlgoProfile executes a harness algorithm, with vectorized kernels
// resolved per profile.
func runAlgoProfile(algo Algo, g *graph.Graph, th simdef.Threshold, workers int, profile Profile) *result.Result {
	switch algo {
	case AlgoSCAN:
		return scan.Run(g, th, scan.Options{Kernel: intersect.Merge})
	case AlgoPSCAN:
		return pscan.Run(g, th, pscan.Options{Kernel: intersect.MergeEarly})
	case AlgoAnySCAN:
		return anyscan.Run(g, th, anyscan.Options{Kernel: intersect.MergeEarly, Workers: workers})
	case AlgoSCANXP:
		r, err := scanxp.Run(g, th, scanxp.Options{Kernel: intersect.Merge, Workers: workers})
		if err != nil {
			// The harness runs without fault injection; a contained worker
			// panic here is a bug worth the loud exit.
			panic(fmt.Sprintf("expharness: scan-xp failed: %v", err))
		}
		return r
	case AlgoPPSCAN:
		return core.Run(g, th, core.Options{Kernel: profile.blockKernel(), Workers: workers})
	case AlgoPPSCANNO:
		r := core.Run(g, th, core.Options{Kernel: intersect.MergeEarly, Workers: workers})
		r.Stats.Algorithm = "ppSCAN-NO"
		return r
	default:
		panic(fmt.Sprintf("expharness: unknown algorithm %q", algo))
	}
}

// Experiment is a registry entry binding an id to a run-and-print driver.
type Experiment struct {
	ID          string
	Description string
	Run         func(cfg Config)
}

// Experiments returns the full registry in presentation order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Table 1: real-world graph statistics", func(cfg Config) {
			PrintStats(cfg, "Table 1: real-world graph statistics (surrogates)", Table1(cfg))
		}},
		{"table2", "Table 2: synthetic ROLL graph statistics", func(cfg Config) {
			PrintStats(cfg, "Table 2: synthetic ROLL graph statistics", Table2(cfg))
		}},
		{"fig1", "Figure 1: SCAN vs pSCAN time breakdown", func(cfg Config) {
			rows := Fig1(cfg)
			PrintFig1(cfg, rows)
			if cfg.Charts {
				ChartBreakdown(cfg.norm().Out, rows)
			}
		}},
		{"fig2", "Figure 2: overall comparison (CPU profile)", func(cfg Config) {
			rows := Fig2(cfg)
			PrintOverall(cfg, ProfileCPU, rows)
			if cfg.Charts {
				ChartOverall(cfg.norm().Out, rows)
			}
		}},
		{"fig3", "Figure 3: overall comparison (KNL profile)", func(cfg Config) {
			rows := Fig3(cfg)
			PrintOverall(cfg, ProfileKNL, rows)
			if cfg.Charts {
				ChartOverall(cfg.norm().Out, rows)
			}
		}},
		{"fig4", "Figure 4: set-intersection invocation reduction", func(cfg Config) {
			PrintFig4(cfg, Fig4(cfg))
		}},
		{"fig5", "Figure 5: vectorization improvement", func(cfg Config) {
			PrintFig5(cfg, Fig5(cfg))
		}},
		{"fig6", "Figure 6: scalability to number of threads", func(cfg Config) {
			rows := Fig6(cfg)
			PrintFig6(cfg, rows)
			if cfg.Charts {
				ChartScale(cfg.norm().Out, rows)
			}
		}},
		{"fig7", "Figure 7: robustness across mu and eps", func(cfg Config) {
			PrintFig7(cfg, Fig7(cfg))
		}},
		{"fig8", "Figure 8: ROLL graphs runtime and self-speedup", func(cfg Config) {
			PrintFig8(cfg, Fig8(cfg))
		}},
		{"ablations", "Ablations: scheduler, task threshold, order, kernels", func(cfg Config) {
			PrintAblations(cfg, Ablations(cfg))
		}},
	}
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("expharness: unknown experiment %q (known: %v)", id, ids)
}

// rd rounds durations for display.
func rd(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Microsecond).String()
	}
}
