package expharness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"ppscan/graph"
	"ppscan/internal/result"
)

// CSVWriter exports an experiment's structured rows as machine-readable
// CSV, for plotting the figures with external tooling.
type CSVWriter struct {
	w *csv.Writer
}

// NewCSVWriter wraps an io.Writer.
func NewCSVWriter(w io.Writer) *CSVWriter {
	return &CSVWriter{w: csv.NewWriter(w)}
}

func (c *CSVWriter) writeAll(header []string, rows [][]string) error {
	if err := c.w.Write(header); err != nil {
		return err
	}
	if err := c.w.WriteAll(rows); err != nil {
		return err
	}
	c.w.Flush()
	return c.w.Error()
}

func f2s(f float64) string { return strconv.FormatFloat(f, 'g', 8, 64) }
func d2s(d int64) string   { return strconv.FormatInt(d, 10) }

// WriteStats exports Table 1/2 rows.
func (c *CSVWriter) WriteStats(rows []graph.Stats) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Name, d2s(int64(r.NumVertices)), d2s(r.NumEdges), f2s(r.AvgDegree), d2s(int64(r.MaxDegree))}
	}
	return c.writeAll([]string{"name", "vertices", "directed_edges", "avg_degree", "max_degree"}, out)
}

// WriteBreakdown exports Figure 1 rows.
func (c *CSVWriter) WriteBreakdown(rows []BreakdownPoint) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Dataset, r.Algorithm, r.Eps,
			d2s(r.Similarity.Nanoseconds()), d2s(r.Reduction.Nanoseconds()),
			d2s(r.Other.Nanoseconds()), d2s(r.Total.Nanoseconds())}
	}
	return c.writeAll([]string{"dataset", "algorithm", "eps", "similarity_ns", "reduction_ns", "other_ns", "total_ns"}, out)
}

// WriteOverall exports Figure 2/3 rows.
func (c *CSVWriter) WriteOverall(rows []OverallPoint) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Dataset, string(r.Algo), r.Eps, d2s(r.Runtime.Nanoseconds()), f2s(r.SpeedupVsPSCAN)}
	}
	return c.writeAll([]string{"dataset", "algorithm", "eps", "runtime_ns", "speedup_vs_pscan"}, out)
}

// WriteInvocations exports Figure 4 rows.
func (c *CSVWriter) WriteInvocations(rows []InvocationPoint) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Dataset, r.Eps, d2s(r.Edges), d2s(r.PSCANCalls), d2s(r.PPSCANCalls),
			f2s(r.NormalizedPSCAN()), f2s(r.NormalizedPPSCAN())}
	}
	return c.writeAll([]string{"dataset", "eps", "edges", "pscan_calls", "ppscan_calls", "pscan_norm", "ppscan_norm"}, out)
}

// WriteVec exports Figure 5 rows.
func (c *CSVWriter) WriteVec(rows []VecPoint) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Dataset, r.Eps, r.Profile.String(),
			d2s(r.CheckCoreNO.Nanoseconds()), d2s(r.CheckCoreVec.Nanoseconds()), f2s(r.Speedup())}
	}
	return c.writeAll([]string{"dataset", "eps", "profile", "scalar_ns", "vectorized_ns", "speedup"}, out)
}

// WriteScale exports Figure 6 rows.
func (c *CSVWriter) WriteScale(rows []ScalePoint) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Dataset, d2s(int64(r.Workers)),
			d2s(r.Phases[result.PhasePruning].Nanoseconds()),
			d2s(r.Phases[result.PhaseCheckCore].Nanoseconds()),
			d2s(r.Phases[result.PhaseClusterCore].Nanoseconds()),
			d2s(r.Phases[result.PhaseClusterNonCore].Nanoseconds()),
			d2s(r.Total.Nanoseconds()), f2s(r.SelfSpeedup)}
	}
	return c.writeAll([]string{"dataset", "workers", "pruning_ns", "check_core_ns",
		"cluster_core_ns", "cluster_noncore_ns", "total_ns", "self_speedup"}, out)
}

// WriteRobust exports Figure 7 rows.
func (c *CSVWriter) WriteRobust(rows []RobustPoint) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Dataset, r.Eps, d2s(int64(r.Mu)), d2s(r.Runtime.Nanoseconds())}
	}
	return c.writeAll([]string{"dataset", "eps", "mu", "runtime_ns"}, out)
}

// WriteRoll exports Figure 8 rows.
func (c *CSVWriter) WriteRoll(rows []RollPoint) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Dataset, r.Eps, r.Profile.String(), d2s(r.Runtime.Nanoseconds()), f2s(r.SelfSpeedup)}
	}
	return c.writeAll([]string{"dataset", "eps", "profile", "runtime_ns", "self_speedup"}, out)
}

// WriteAblations exports ablation rows.
func (c *CSVWriter) WriteAblations(rows []AblationPoint) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Group, r.Variant, r.Dataset, d2s(r.Runtime.Nanoseconds()), d2s(r.CompSimCalls), d2s(r.CommBytes)}
	}
	return c.writeAll([]string{"group", "variant", "dataset", "runtime_ns", "compsim_calls", "comm_bytes"}, out)
}

// RunCSV executes the experiment with the given id and writes its rows as
// CSV to w.
func RunCSV(id string, cfg Config, w io.Writer) error {
	cw := NewCSVWriter(w)
	switch id {
	case "table1":
		return cw.WriteStats(Table1(cfg))
	case "table2":
		return cw.WriteStats(Table2(cfg))
	case "fig1":
		return cw.WriteBreakdown(Fig1(cfg))
	case "fig2":
		return cw.WriteOverall(Fig2(cfg))
	case "fig3":
		return cw.WriteOverall(Fig3(cfg))
	case "fig4":
		return cw.WriteInvocations(Fig4(cfg))
	case "fig5":
		return cw.WriteVec(Fig5(cfg))
	case "fig6":
		return cw.WriteScale(Fig6(cfg))
	case "fig7":
		return cw.WriteRobust(Fig7(cfg))
	case "fig8":
		return cw.WriteRoll(Fig8(cfg))
	case "ablations":
		return cw.WriteAblations(Ablations(cfg))
	default:
		return fmt.Errorf("expharness: no CSV export for %q", id)
	}
}
