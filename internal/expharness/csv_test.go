package expharness

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func parseCSV(t *testing.T, data string) [][]string {
	t.Helper()
	rows, err := csv.NewReader(strings.NewReader(data)).ReadAll()
	if err != nil {
		t.Fatalf("invalid CSV: %v", err)
	}
	return rows
}

func TestRunCSVAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("CSV export of all experiments skipped in -short")
	}
	cfg := Config{Scale: 0.02, Workers: 2, Quick: true}
	wantRows := map[string]int{
		"table1": 4, "table2": 4,
		"fig1": 12, "fig2": 40, "fig3": 40, "fig4": 8,
		"fig5": 16, "fig6": 8, "fig7": 16, "fig8": 8,
		// 1 quick dataset x (2 scheduler + 3 thresholds + 3 orders + 6 kernels)
		"ablations": 19,
	}
	for _, e := range Experiments() {
		var buf bytes.Buffer
		if err := RunCSV(e.ID, cfg, &buf); err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		rows := parseCSV(t, buf.String())
		if len(rows) < 2 {
			t.Fatalf("%s: no data rows", e.ID)
		}
		if got := len(rows) - 1; got != wantRows[e.ID] {
			t.Errorf("%s: %d data rows, want %d", e.ID, got, wantRows[e.ID])
		}
		width := len(rows[0])
		for i, r := range rows {
			if len(r) != width {
				t.Fatalf("%s: row %d has %d fields, header has %d", e.ID, i, len(r), width)
			}
		}
	}
}

func TestRunCSVUnknownID(t *testing.T) {
	var buf bytes.Buffer
	if err := RunCSV("fig99", Config{}, &buf); err == nil {
		t.Errorf("unknown id accepted")
	}
}

func TestCSVStatsShape(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{Scale: 0.02}
	if err := RunCSV("table2", cfg, &buf); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, buf.String())
	if rows[0][0] != "name" || rows[0][4] != "max_degree" {
		t.Errorf("header = %v", rows[0])
	}
	if rows[1][0] != "ROLL-d40" {
		t.Errorf("first data row = %v", rows[1])
	}
}
