package graph

import (
	"fmt"
	"sort"
)

// Relabel returns a new graph in which old vertex u becomes perm[u]. perm
// must be a permutation of [0, |V|). Relabeling is the standard locality
// optimization for CSR graph processing (the paper's degree-based
// scheduling benefits from hubs being adjacent in id space) and the basis
// of isomorphism-invariance tests.
func (g *Graph) Relabel(perm []int32) (*Graph, error) {
	n := g.NumVertices()
	if int32(len(perm)) != n {
		return nil, fmt.Errorf("graph: permutation has %d entries for %d vertices", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || p >= n || seen[p] {
			return nil, fmt.Errorf("graph: invalid permutation entry %d", p)
		}
		seen[p] = true
	}
	edges := make([]Edge, 0, g.NumEdges())
	for u := int32(0); u < n; u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				edges = append(edges, Edge{U: perm[u], V: perm[v]})
			}
		}
	}
	return FromEdges(n, edges)
}

// DegreeOrderPermutation returns the permutation that relabels vertices in
// non-increasing degree order (highest-degree vertex becomes 0). Ties keep
// their original relative order.
func (g *Graph) DegreeOrderPermutation() []int32 {
	n := g.NumVertices()
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(i, j int) bool {
		return g.Degree(order[i]) > g.Degree(order[j])
	})
	perm := make([]int32, n)
	for newID, oldID := range order {
		perm[oldID] = int32(newID)
	}
	return perm
}

// BFSOrderPermutation returns the permutation that relabels vertices in
// BFS order from the given root (unreached vertices keep their relative
// order after all reached ones) — a common cache-locality ordering.
func (g *Graph) BFSOrderPermutation(root int32) []int32 {
	n := g.NumVertices()
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = -1
	}
	next := int32(0)
	assign := func(v int32) {
		if perm[v] < 0 {
			perm[v] = next
			next++
		}
	}
	if root >= 0 && root < n {
		queue := []int32{root}
		assign(root)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.Neighbors(u) {
				if perm[v] < 0 {
					assign(v)
					queue = append(queue, v)
				}
			}
		}
	}
	for v := int32(0); v < n; v++ {
		assign(v)
	}
	return perm
}
