package graph

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// FromEdgesParallel builds the same graph as FromEdges using a multi-phase
// parallel pipeline, intended for edge lists in the hundreds of millions
// (the paper's friendster input has 1.8 billion directed edges; CSR
// construction at that scale is itself a parallel problem):
//
//  1. parallel validation and degree counting (per-worker count arrays),
//  2. sequential prefix-sum of offsets,
//  3. parallel placement with per-vertex atomic cursors,
//  4. parallel per-vertex sort + dedup,
//  5. compaction of the deduplicated adjacency.
//
// The result is bit-identical to FromEdges (same CSR arrays). workers < 1
// means GOMAXPROCS.
func FromEdgesParallel(n int32, edges []Edge, workers int) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(edges)/1024+1 {
		workers = len(edges)/1024 + 1
	}

	// Phase 1: validate and count degrees (duplicates included) in
	// per-worker arrays to avoid atomics on the hot path.
	counts := make([][]int64, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	chunk := (len(edges) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(edges) {
			break
		}
		hi := lo + chunk
		if hi > len(edges) {
			hi = len(edges)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			cnt := make([]int64, n)
			for _, e := range edges[lo:hi] {
				if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
					errs[w] = fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
					return
				}
				if e.U == e.V {
					continue
				}
				cnt[e.U]++
				cnt[e.V]++
			}
			counts[w] = cnt
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Phase 2: offsets over the duplicate-inclusive counts.
	off := make([]int64, n+1)
	for u := int32(0); u < n; u++ {
		var d int64
		for _, cnt := range counts {
			if cnt != nil {
				d += cnt[u]
			}
		}
		off[u+1] = off[u] + d
	}
	dst := make([]int32, off[n])

	// Phase 3: placement with atomic per-vertex cursors.
	cursor := make([]int64, n)
	copy(cursor, off[:n])
	parallelChunks(workers, len(edges), func(lo, hi int) {
		for _, e := range edges[lo:hi] {
			if e.U == e.V {
				continue
			}
			iu := atomic.AddInt64(&cursor[e.U], 1) - 1
			dst[iu] = e.V
			iv := atomic.AddInt64(&cursor[e.V], 1) - 1
			dst[iv] = e.U
		}
	})

	// Phase 4: per-vertex sort and in-place dedup; newDeg records the
	// deduplicated lengths.
	newDeg := make([]int64, n)
	parallelChunks(workers, int(n), func(lo, hi int) {
		for u := lo; u < hi; u++ {
			nbrs := dst[off[u]:off[u+1]]
			sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
			k := 0
			for i, v := range nbrs {
				if i == 0 || v != nbrs[i-1] {
					nbrs[k] = v
					k++
				}
			}
			newDeg[u] = int64(k)
		}
	})

	// Phase 5: compact into the final arrays.
	finalOff := make([]int64, n+1)
	for u := int32(0); u < n; u++ {
		finalOff[u+1] = finalOff[u] + newDeg[u]
	}
	finalDst := make([]int32, finalOff[n])
	parallelChunks(workers, int(n), func(lo, hi int) {
		for u := lo; u < hi; u++ {
			copy(finalDst[finalOff[u]:finalOff[u+1]], dst[off[u]:off[u]+newDeg[u]])
		}
	})
	return &Graph{Off: finalOff, Dst: finalDst}, nil
}

// parallelChunks splits [0, total) into contiguous chunks across workers
// and waits for completion.
func parallelChunks(workers, total int, fn func(lo, hi int)) {
	if total == 0 {
		return
	}
	if workers > total {
		workers = total
	}
	var wg sync.WaitGroup
	chunk := (total + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= total {
			break
		}
		hi := lo + chunk
		if hi > total {
			hi = total
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
