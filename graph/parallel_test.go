package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestFromEdgesParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		n := int32(rng.Intn(200) + 1)
		m := rng.Intn(2000)
		edges := make([]Edge, m)
		for i := range edges {
			edges[i] = Edge{int32(rng.Intn(int(n))), int32(rng.Intn(int(n)))}
		}
		want, err := FromEdges(n, edges)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 5, 16} {
			got, err := FromEdgesParallel(n, edges, workers)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want.Off, got.Off) || !reflect.DeepEqual(want.Dst, got.Dst) {
				t.Fatalf("trial %d workers %d: parallel builder differs", trial, workers)
			}
		}
	}
}

func TestFromEdgesParallelErrors(t *testing.T) {
	if _, err := FromEdgesParallel(-1, nil, 2); err == nil {
		t.Errorf("negative n accepted")
	}
	if _, err := FromEdgesParallel(2, []Edge{{0, 5}}, 2); err == nil {
		t.Errorf("out-of-range edge accepted")
	}
	if _, err := FromEdgesParallel(2, []Edge{{-1, 0}}, 2); err == nil {
		t.Errorf("negative endpoint accepted")
	}
}

func TestFromEdgesParallelEmpty(t *testing.T) {
	g, err := FromEdgesParallel(0, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Errorf("empty parallel build wrong")
	}
	g, err = FromEdgesParallel(5, []Edge{{1, 1}, {2, 2}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 0 {
		t.Errorf("self loops survived: %d", g.NumEdges())
	}
}

func TestFromEdgesParallelQuick(t *testing.T) {
	f := func(seed int64, nRaw uint8, mRaw uint16, wRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int32(nRaw%60) + 1
		m := int(mRaw % 600)
		edges := make([]Edge, m)
		for i := range edges {
			edges[i] = Edge{int32(rng.Intn(int(n))), int32(rng.Intn(int(n)))}
		}
		want, err := FromEdges(n, edges)
		if err != nil {
			return false
		}
		got, err := FromEdgesParallel(n, edges, int(wRaw%8)+1)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(want.Off, got.Off) && reflect.DeepEqual(want.Dst, got.Dst)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkFromEdgesSequential(b *testing.B) {
	edges := benchEdges(1 << 17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromEdges(1<<14, edges); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFromEdgesParallel(b *testing.B) {
	edges := benchEdges(1 << 17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromEdgesParallel(1<<14, edges, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func benchEdges(m int) []Edge {
	rng := rand.New(rand.NewSource(1))
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{int32(rng.Intn(1 << 14)), int32(rng.Intn(1 << 14))}
	}
	return edges
}
