package graph_test

import (
	"fmt"
	"log"

	"ppscan/graph"
)

func ExampleFromEdges() {
	g, err := graph.FromEdges(4, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 2, V: 3},
		{U: 1, V: 0}, // duplicate orientation, merged
		{U: 3, V: 3}, // self loop, dropped
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("|V| =", g.NumVertices(), "|E| =", g.NumEdges())
	fmt.Println("neighbors of 2:", g.Neighbors(2))
	// Output:
	// |V| = 4 |E| = 4
	// neighbors of 2: [0 1 3]
}

func ExampleGraph_EdgeOffset() {
	g, _ := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	e := g.EdgeOffset(1, 2)
	fmt.Println("dst[e(1,2)] =", g.Dst[e])
	fmt.Println("missing edge:", g.EdgeOffset(0, 2))
	// Output:
	// dst[e(1,2)] = 2
	// missing edge: -1
}

func ExampleGraph_ConnectedComponents() {
	g, _ := graph.FromEdges(5, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	labels, n := g.ConnectedComponents()
	fmt.Println("components:", n)
	fmt.Println("same component:", labels[0] == labels[1], labels[0] == labels[2])
	// Output:
	// components: 3
	// same component: true false
}

func ExampleGraph_KCoreDecomposition() {
	// K4 with a tail: the clique is the 3-core, the tail is 1-core.
	g, _ := graph.FromEdges(6, []graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 1, V: 2}, {U: 1, V: 3}, {U: 2, V: 3},
		{U: 3, V: 4}, {U: 4, V: 5},
	})
	fmt.Println(g.KCoreDecomposition())
	fmt.Println("degeneracy:", g.Degeneracy())
	// Output:
	// [3 3 3 3 1 1]
	// degeneracy: 3
}
