// Epoch-versioned snapshot store: batched edge mutations over the
// immutable CSR.
//
// Every Graph in this package is immutable — that is what lets eight
// algorithm backends, the GS*-Index and the HTTP serving stack share one
// CSR without locks. A Store layers mutability on top without giving that
// up: mutations are batched into a Commit, each Commit produces a brand
// new immutable *Graph snapshot (copy-on-write per affected adjacency
// run; untouched runs are bulk-copied, touched runs are re-merged), and
// an epoch counter versions the sequence. In-flight readers keep whatever
// snapshot they loaded — a mutation can never tear a running query — and
// a snapshot's bookkeeping entry is dropped when its last reader leaves,
// so the store never pins more history than its readers do.
package graph

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// EdgeOp is one edge mutation: insert (Del false) or delete (Del true) of
// the undirected edge {U, V}. Orientation does not matter; {V, U} names
// the same edge.
type EdgeOp struct {
	U, V int32
	Del  bool
}

// Delta describes what one Commit actually changed: the snapshot pair,
// the normalized edge sets that were applied, and the vertices whose
// adjacency runs were rewritten. It is the input contract of incremental
// index maintenance (gsindex.Index.ApplyBatch): everything an updater
// must recompute is incident to Touched.
type Delta struct {
	// Old and New are the pre- and post-commit snapshots. A no-op commit
	// (every operation ignored) has Old == New.
	Old, New *Graph
	// Added and Removed hold the edges actually applied, normalized to
	// U < V and sorted lexicographically. Inserts of present edges and
	// deletes of absent edges are dropped (counted in Ignored), as are
	// self loops; within one batch the last operation on an edge wins.
	Added, Removed []Edge
	// Touched lists, sorted and unique, every vertex incident to an
	// applied operation — exactly the vertices whose adjacency run (and
	// degree) differs between Old and New.
	Touched []int32
	// Ignored counts operations the batch dropped: duplicates superseded
	// within the batch, inserts of existing edges, deletes of missing
	// edges, and self loops.
	Ignored int
}

// Epoch returns the epoch of the post-commit snapshot.
func (d *Delta) Epoch() uint64 { return d.New.Epoch() }

// Empty reports whether the commit changed nothing.
func (d *Delta) Empty() bool { return len(d.Added) == 0 && len(d.Removed) == 0 }

// snapshot is one epoch's bookkeeping entry: the graph plus a reader
// refcount. The store's own "current" pointer holds one reference; each
// Acquire holds another. When the count reaches zero (the snapshot has
// been superseded and its last reader left) the entry is dropped from the
// live table — the Graph itself stays valid for anyone still holding it
// (it is immutable and garbage-collected); only the store stops tracking
// and pinning it.
type snapshot struct {
	store *Store
	g     *Graph
	refs  atomic.Int64
}

// Snapshot is a counted reference to one epoch's graph. Obtain one with
// Store.Acquire, read Graph and Epoch freely, and call Release exactly
// once when done. The Graph remains usable after Release (immutability
// makes that safe); Release only returns the reference so the store can
// drop superseded epochs from its live table.
type Snapshot struct {
	sn *snapshot
}

// Graph returns the snapshot's immutable graph.
func (s *Snapshot) Graph() *Graph { return s.sn.g }

// Epoch returns the snapshot's version.
func (s *Snapshot) Epoch() uint64 { return s.sn.g.Epoch() }

// Release returns the reference. It must be called exactly once.
func (s *Snapshot) Release() { s.sn.unref() }

func (sn *snapshot) unref() {
	if sn.refs.Add(-1) == 0 {
		sn.store.liveMu.Lock()
		// Re-check under the lock: a racing Acquire may have resurrected
		// the count between the Add and here.
		if sn.refs.Load() == 0 {
			delete(sn.store.live, sn.g.Epoch())
		}
		sn.store.liveMu.Unlock()
	}
}

// Store versions one logical graph through batched edge mutations. Reads
// (Acquire, Epoch) are lock-free; Commits serialize against each other
// but never block readers. The zero value is not ready; use NewStore.
type Store struct {
	commitMu sync.Mutex // serializes Commit
	cur      atomic.Pointer[snapshot]

	liveMu sync.Mutex
	live   map[uint64]*snapshot

	epoch atomic.Uint64 // current epoch, == cur's graph epoch
}

// NewStore creates a store whose epoch-0 snapshot is g. The store assumes
// ownership of nothing: g must not be mutated by the caller afterwards
// (the usual immutability contract of this package).
func NewStore(g *Graph) *Store {
	s := &Store{live: map[uint64]*snapshot{}}
	sn := &snapshot{store: s, g: g}
	sn.refs.Store(1) // the store's current-pointer reference
	s.cur.Store(sn)
	s.live[g.Epoch()] = sn
	s.epoch.Store(g.Epoch())
	return s
}

// Epoch returns the current snapshot's version.
func (s *Store) Epoch() uint64 { return s.epoch.Load() }

// Graph returns the current snapshot's graph without taking a counted
// reference — the convenience accessor for callers that only need a
// consistent momentary view (the graph stays valid regardless; see
// Snapshot for why).
func (s *Store) Graph() *Graph { return s.cur.Load().g }

// Acquire returns a counted reference to the current snapshot. The pair
// (graph, epoch) it carries is consistent: both come from one atomic load.
func (s *Store) Acquire() *Snapshot {
	sn := s.cur.Load()
	sn.refs.Add(1)
	return &Snapshot{sn: sn}
}

// LiveSnapshots reports how many epochs the store is still tracking: the
// current one plus every superseded snapshot with at least one reader.
func (s *Store) LiveSnapshots() int {
	s.liveMu.Lock()
	defer s.liveMu.Unlock()
	return len(s.live)
}

// Commit applies one mutation batch and publishes the resulting snapshot
// under the next epoch. The batch is normalized first (orientation, last
// op per edge wins, no-ops dropped — see Delta); a batch that changes
// nothing returns a Delta with Old == New and does NOT advance the epoch,
// so pure-duplicate traffic cannot churn caches keyed by it. Endpoints
// must lie in [0, NumVertices()); the vertex set is fixed at NewStore
// (deleting every edge of a vertex leaves it isolated, it never
// disappears).
//
// Concurrent Commits serialize; each sees the graph its predecessor
// produced. Readers are never blocked and never observe a partial batch.
func (s *Store) Commit(batch []EdgeOp) (*Delta, error) {
	return s.CommitWith(batch, nil)
}

// CommitWith is Commit with a pre-publication hook: prepare is invoked on
// the resulting delta after the new snapshot is built but BEFORE it is
// published, still under the commit lock. When prepare returns an error
// (or panics), the commit is abandoned — the epoch does not advance and
// readers never observe the prepared snapshot. This is how derived state
// (e.g. the GS*-Index) stays transactional with the graph: the caller
// updates its derivation inside prepare, and a failed update aborts the
// whole mutation instead of leaving graph and index at different epochs.
// A nil prepare behaves exactly like Commit; prepare is not called for
// no-op batches.
func (s *Store) CommitWith(batch []EdgeOp, prepare func(*Delta) error) (*Delta, error) {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	old := s.cur.Load().g
	d, err := applyBatch(old, batch)
	if err != nil {
		return nil, err
	}
	if d.Empty() {
		return d, nil
	}
	//lint:snapfreeze pre-publication: d.New is the next snapshot, invisible to readers until the CAS below
	d.New.epoch = old.Epoch() + 1
	if prepare != nil {
		if err := prepare(d); err != nil {
			return nil, err
		}
	}
	sn := &snapshot{store: s, g: d.New}
	sn.refs.Store(1)
	s.liveMu.Lock()
	s.live[d.New.Epoch()] = sn
	s.liveMu.Unlock()
	prev := s.cur.Swap(sn)
	s.epoch.Store(d.New.Epoch())
	prev.unref() // drop the store's reference to the superseded snapshot
	return d, nil
}

// applyBatch normalizes batch against old and builds the new CSR. Pure
// function of its inputs — Commit wraps it with epoch/publication.
func applyBatch(old *Graph, batch []EdgeOp) (*Delta, error) {
	n := old.NumVertices()
	// Normalize: validate range, drop self loops, orient U < V, last op
	// per edge wins (preserving batch order semantics).
	type verdict struct {
		del bool
		seq int
	}
	ops := make(map[Edge]verdict, len(batch))
	ignored := 0
	for i, op := range batch {
		if op.U < 0 || op.U >= n || op.V < 0 || op.V >= n {
			return nil, fmt.Errorf("graph: edge op (%d,%d) out of range [0,%d)", op.U, op.V, n)
		}
		if op.U == op.V {
			ignored++
			continue
		}
		e := Edge{U: op.U, V: op.V}
		if e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		if _, dup := ops[e]; dup {
			ignored++ // the earlier op on this edge is superseded
		}
		ops[e] = verdict{del: op.Del, seq: i}
	}
	// Split into effective adds/removes against the current edge set.
	var added, removed []Edge
	for e, v := range ops {
		present := old.HasEdge(e.U, e.V)
		switch {
		case v.del && present:
			removed = append(removed, e)
		case !v.del && !present:
			added = append(added, e)
		default:
			ignored++ // insert of an existing edge / delete of a missing one
		}
	}
	sortEdges(added)
	sortEdges(removed)
	d := &Delta{Old: old, New: old, Added: added, Removed: removed, Ignored: ignored}
	if d.Empty() {
		return d, nil
	}
	// Touched vertices and their per-vertex change lists.
	addsOf := map[int32][]int32{}
	delsOf := map[int32][]int32{}
	for _, e := range added {
		addsOf[e.U] = append(addsOf[e.U], e.V)
		addsOf[e.V] = append(addsOf[e.V], e.U)
	}
	for _, e := range removed {
		delsOf[e.U] = append(delsOf[e.U], e.V)
		delsOf[e.V] = append(delsOf[e.V], e.U)
	}
	touched := make([]int32, 0, len(addsOf)+len(delsOf))
	for u := range addsOf {
		touched = append(touched, u)
	}
	for u := range delsOf {
		if _, also := addsOf[u]; !also {
			touched = append(touched, u)
		}
	}
	sort.Slice(touched, func(i, j int) bool { return touched[i] < touched[j] })
	d.Touched = touched

	// New offsets from per-vertex degree deltas.
	off := make([]int64, n+1)
	for u := int32(0); u < n; u++ {
		deg := int64(old.Degree(u)) + int64(len(addsOf[u])) - int64(len(delsOf[u]))
		off[u+1] = off[u] + deg
	}
	dst := make([]int32, off[n])
	// Copy-on-write per adjacency run: untouched vertices form contiguous
	// spans in both layouts, copied in bulk; each touched run is re-merged
	// from its old run and sorted change lists.
	var nextTouched int
	for u := int32(0); u < n; {
		if nextTouched < len(touched) && touched[nextTouched] == u {
			merged := mergeRun(old.Neighbors(u), addsOf[u], delsOf[u])
			copy(dst[off[u]:off[u+1]], merged)
			nextTouched++
			u++
			continue
		}
		// Extend the untouched span as far as possible, then bulk-copy it.
		stop := n
		if nextTouched < len(touched) {
			stop = touched[nextTouched]
		}
		copy(dst[off[u]:off[stop]], old.Dst[old.Off[u]:old.Off[stop]])
		u = stop
	}
	d.New = &Graph{Off: off, Dst: dst}
	return d, nil
}

// mergeRun produces the new sorted neighbor run: old minus dels plus
// adds. adds and dels are small and unsorted; they are sorted in place.
func mergeRun(old, adds, dels []int32) []int32 {
	sortInt32(adds)
	sortInt32(dels)
	out := make([]int32, 0, len(old)+len(adds))
	ai, di := 0, 0
	for _, v := range old {
		for ai < len(adds) && adds[ai] < v {
			out = append(out, adds[ai])
			ai++
		}
		if di < len(dels) && dels[di] == v {
			di++
			continue
		}
		out = append(out, v)
	}
	out = append(out, adds[ai:]...)
	return out
}

func sortEdges(edges []Edge) {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
}

func sortInt32(s []int32) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
