package graph

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// mustGraph builds a graph from edges or fails the test.
func mustGraph(t *testing.T, n int32, edges []Edge) *Graph {
	t.Helper()
	g, err := FromEdges(n, edges)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	return g
}

// edgeSet converts a graph back to its undirected edge set.
func edgeSet(g *Graph) map[Edge]bool {
	set := map[Edge]bool{}
	for _, e := range g.Edges() {
		set[e] = true
	}
	return set
}

// requireSameGraph checks g matches the ground-truth rebuild from want's
// edge set (identical Off/Dst arrays, not just the same edge set).
func requireSameGraph(t *testing.T, got, want *Graph) {
	t.Helper()
	if err := got.Validate(); err != nil {
		t.Fatalf("committed graph invalid: %v", err)
	}
	if got.NumVertices() != want.NumVertices() {
		t.Fatalf("NumVertices = %d, want %d", got.NumVertices(), want.NumVertices())
	}
	if len(got.Off) != len(want.Off) || len(got.Dst) != len(want.Dst) {
		t.Fatalf("layout size mismatch: off %d/%d dst %d/%d",
			len(got.Off), len(want.Off), len(got.Dst), len(want.Dst))
	}
	for i := range got.Off {
		if got.Off[i] != want.Off[i] {
			t.Fatalf("Off[%d] = %d, want %d", i, got.Off[i], want.Off[i])
		}
	}
	for i := range got.Dst {
		if got.Dst[i] != want.Dst[i] {
			t.Fatalf("Dst[%d] = %d, want %d", i, got.Dst[i], want.Dst[i])
		}
	}
}

func TestStoreCommitBasic(t *testing.T) {
	g := mustGraph(t, 5, []Edge{{0, 1}, {1, 2}, {2, 3}})
	st := NewStore(g)
	if st.Epoch() != 0 {
		t.Fatalf("initial epoch = %d, want 0", st.Epoch())
	}
	d, err := st.Commit([]EdgeOp{
		{U: 3, V: 4},           // insert
		{U: 2, V: 1, Del: true}, // delete, reversed orientation
	})
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if d.Epoch() != 1 || st.Epoch() != 1 {
		t.Fatalf("epoch after commit = %d/%d, want 1", d.Epoch(), st.Epoch())
	}
	if len(d.Added) != 1 || d.Added[0] != (Edge{3, 4}) {
		t.Fatalf("Added = %v, want [{3 4}]", d.Added)
	}
	if len(d.Removed) != 1 || d.Removed[0] != (Edge{1, 2}) {
		t.Fatalf("Removed = %v, want [{1 2}]", d.Removed)
	}
	wantTouched := []int32{1, 2, 3, 4}
	if len(d.Touched) != len(wantTouched) {
		t.Fatalf("Touched = %v, want %v", d.Touched, wantTouched)
	}
	for i, u := range wantTouched {
		if d.Touched[i] != u {
			t.Fatalf("Touched = %v, want %v", d.Touched, wantTouched)
		}
	}
	want := mustGraph(t, 5, []Edge{{0, 1}, {2, 3}, {3, 4}})
	requireSameGraph(t, st.Graph(), want)
	// The old snapshot is untouched.
	if g.HasEdge(3, 4) || !g.HasEdge(1, 2) {
		t.Fatal("commit mutated the old snapshot")
	}
}

func TestStoreCommitNormalization(t *testing.T) {
	g := mustGraph(t, 4, []Edge{{0, 1}})
	st := NewStore(g)
	d, err := st.Commit([]EdgeOp{
		{U: 2, V: 2},            // self loop: ignored
		{U: 0, V: 1},            // insert existing: ignored
		{U: 2, V: 3, Del: true}, // delete missing: ignored
		{U: 1, V: 2},            // superseded by the delete below
		{U: 1, V: 2, Del: true}, // last op wins: net no-op on a missing edge
	})
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if !d.Empty() {
		t.Fatalf("delta not empty: added=%v removed=%v", d.Added, d.Removed)
	}
	if d.Old != d.New {
		t.Fatal("no-op commit produced a new snapshot")
	}
	if st.Epoch() != 0 {
		t.Fatalf("no-op commit advanced epoch to %d", st.Epoch())
	}
	if d.Ignored != 5 {
		t.Fatalf("Ignored = %d, want 5", d.Ignored)
	}
	// Duplicate ops where the last one is effective.
	d, err = st.Commit([]EdgeOp{
		{U: 1, V: 2, Del: true}, // superseded
		{U: 1, V: 2},            // effective insert
		{U: 2, V: 1},            // duplicate insert of the same edge, superseded
	})
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if len(d.Added) != 1 || d.Added[0] != (Edge{1, 2}) {
		t.Fatalf("Added = %v, want [{1 2}]", d.Added)
	}
	if st.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", st.Epoch())
	}
}

func TestStoreCommitOutOfRange(t *testing.T) {
	st := NewStore(mustGraph(t, 3, []Edge{{0, 1}}))
	if _, err := st.Commit([]EdgeOp{{U: 0, V: 3}}); err == nil {
		t.Fatal("expected error for out-of-range vertex")
	}
	if _, err := st.Commit([]EdgeOp{{U: -1, V: 1}}); err == nil {
		t.Fatal("expected error for negative vertex")
	}
	if st.Epoch() != 0 {
		t.Fatalf("failed commit advanced epoch to %d", st.Epoch())
	}
}

func TestStoreDeleteToIsolatedVertex(t *testing.T) {
	// Vertex 1 has every incident edge removed: it must remain a valid
	// isolated vertex, not vanish.
	st := NewStore(mustGraph(t, 4, []Edge{{0, 1}, {1, 2}, {1, 3}, {2, 3}}))
	d, err := st.Commit([]EdgeOp{
		{U: 0, V: 1, Del: true},
		{U: 1, V: 2, Del: true},
		{U: 1, V: 3, Del: true},
	})
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	g := d.New
	if g.NumVertices() != 4 {
		t.Fatalf("NumVertices = %d, want 4", g.NumVertices())
	}
	if deg := g.Degree(1); deg != 0 {
		t.Fatalf("Degree(1) = %d, want 0", deg)
	}
	requireSameGraph(t, g, mustGraph(t, 4, []Edge{{2, 3}}))
	// And re-inserting brings it back.
	d, err = st.Commit([]EdgeOp{{U: 1, V: 3}})
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	requireSameGraph(t, d.New, mustGraph(t, 4, []Edge{{1, 3}, {2, 3}}))
}

func TestStoreSnapshotLifecycle(t *testing.T) {
	st := NewStore(mustGraph(t, 4, []Edge{{0, 1}, {1, 2}}))
	s0 := st.Acquire()
	if s0.Epoch() != 0 {
		t.Fatalf("snapshot epoch = %d, want 0", s0.Epoch())
	}
	if n := st.LiveSnapshots(); n != 1 {
		t.Fatalf("LiveSnapshots = %d, want 1", n)
	}
	if _, err := st.Commit([]EdgeOp{{U: 2, V: 3}}); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	// Old epoch still pinned by s0.
	if n := st.LiveSnapshots(); n != 2 {
		t.Fatalf("LiveSnapshots after commit = %d, want 2", n)
	}
	// The held snapshot still reads its consistent view.
	if s0.Graph().HasEdge(2, 3) {
		t.Fatal("old snapshot sees the new edge")
	}
	s0.Release()
	if n := st.LiveSnapshots(); n != 1 {
		t.Fatalf("LiveSnapshots after release = %d, want 1", n)
	}
	s1 := st.Acquire()
	if s1.Epoch() != 1 || !s1.Graph().HasEdge(2, 3) {
		t.Fatalf("current snapshot epoch=%d", s1.Epoch())
	}
	s1.Release()
	// The current snapshot is always live (store's own reference).
	if n := st.LiveSnapshots(); n != 1 {
		t.Fatalf("LiveSnapshots = %d, want 1", n)
	}
}

func TestStoreCommitWithAbort(t *testing.T) {
	st := NewStore(mustGraph(t, 4, []Edge{{0, 1}}))
	failed := fmt.Errorf("derived state refused")
	d, err := st.CommitWith([]EdgeOp{{U: 1, V: 2}}, func(d *Delta) error {
		if d.New.Epoch() != 1 {
			t.Fatalf("prepare saw epoch %d, want 1", d.New.Epoch())
		}
		return failed
	})
	if err != failed || d != nil {
		t.Fatalf("CommitWith = (%v, %v), want (nil, refusal)", d, err)
	}
	if st.Epoch() != 0 || st.Graph().HasEdge(1, 2) {
		t.Fatal("aborted commit was published")
	}
	// A panicking prepare must not publish either.
	func() {
		defer func() { _ = recover() }()
		_, _ = st.CommitWith([]EdgeOp{{U: 1, V: 2}}, func(*Delta) error { panic("boom") })
		t.Fatal("prepare panic did not propagate")
	}()
	if st.Epoch() != 0 || st.Graph().HasEdge(1, 2) {
		t.Fatal("panicked commit was published")
	}
	// And the store is still usable afterwards (the commit lock was
	// released on the panic path).
	if _, err := st.Commit([]EdgeOp{{U: 1, V: 2}}); err != nil {
		t.Fatalf("Commit after aborts: %v", err)
	}
	if st.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", st.Epoch())
	}
}

// TestStoreRandomizedChurn cross-checks COW commits against from-scratch
// rebuilds over many random batches.
func TestStoreRandomizedChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 40
	var edges []Edge
	for u := int32(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Intn(5) == 0 {
				edges = append(edges, Edge{u, v})
			}
		}
	}
	st := NewStore(mustGraph(t, n, edges))
	truth := edgeSet(st.Graph())
	for round := 0; round < 30; round++ {
		batch := make([]EdgeOp, 0, 12)
		for i := 0; i < 12; i++ {
			u := int32(rng.Intn(n))
			v := int32(rng.Intn(n))
			batch = append(batch, EdgeOp{U: u, V: v, Del: rng.Intn(2) == 0})
		}
		d, err := st.Commit(batch)
		if err != nil {
			t.Fatalf("round %d: Commit: %v", round, err)
		}
		// Apply normalized batch to the truth set and rebuild.
		for _, e := range d.Removed {
			delete(truth, e)
		}
		for _, e := range d.Added {
			truth[e] = true
		}
		wantEdges := make([]Edge, 0, len(truth))
		for e := range truth {
			wantEdges = append(wantEdges, e)
		}
		requireSameGraph(t, st.Graph(), mustGraph(t, n, wantEdges))
		if !d.Empty() && d.Epoch() != st.Epoch() {
			t.Fatalf("round %d: delta epoch %d != store epoch %d", round, d.Epoch(), st.Epoch())
		}
	}
}

// TestStoreConcurrentReaders exercises Acquire/Release racing with
// Commits; run under -race this validates the publication protocol.
func TestStoreConcurrentReaders(t *testing.T) {
	st := NewStore(mustGraph(t, 16, []Edge{{0, 1}, {1, 2}, {2, 3}}))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := st.Acquire()
				g := s.Graph()
				// A consistent snapshot always validates.
				if err := g.Validate(); err != nil {
					t.Errorf("snapshot invalid: %v", err)
					s.Release()
					return
				}
				if g.Epoch() != s.Epoch() {
					t.Errorf("epoch mismatch: %d vs %d", g.Epoch(), s.Epoch())
				}
				s.Release()
			}
		}()
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		batch := []EdgeOp{
			{U: int32(rng.Intn(16)), V: int32(rng.Intn(16)), Del: rng.Intn(2) == 0},
			{U: int32(rng.Intn(16)), V: int32(rng.Intn(16))},
		}
		if _, err := st.Commit(batch); err != nil {
			t.Fatalf("Commit: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	if n := st.LiveSnapshots(); n != 1 {
		t.Fatalf("LiveSnapshots after all readers left = %d, want 1", n)
	}
}
