package graph

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Loader errors must carry enough context to act on: the file path, the
// detected format, and — for a bad binary magic — a hint naming the PSG1
// format so a user who pointed -graph at the wrong file can tell why.

func TestLoadFileErrorMentionsPathAndFormat(t *testing.T) {
	dir := t.TempDir()

	badText := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(badText, []byte("0 notanumber\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadFile(badText)
	if err == nil {
		t.Fatal("LoadFile accepted malformed edge list")
	}
	for _, want := range []string{badText, "edge-list"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("edge-list error %q does not mention %q", err, want)
		}
	}

	badBin := filepath.Join(dir, "bad.bin")
	if err := os.WriteFile(badBin, []byte("this is not PSG1 binary data"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadFile(badBin)
	if err == nil {
		t.Fatal("LoadFile accepted malformed binary file")
	}
	for _, want := range []string{badBin, "binary CSR", "PSG1"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("binary error %q does not mention %q", err, want)
		}
	}

	notGzip := filepath.Join(dir, "bad.txt.gz")
	if err := os.WriteFile(notGzip, []byte("plain, not gzipped"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadFile(notGzip)
	if err == nil {
		t.Fatal("LoadFile accepted non-gzip .gz file")
	}
	if !strings.Contains(err.Error(), notGzip) || !strings.Contains(err.Error(), "gzip") {
		t.Errorf("gzip error %q does not mention path and gzip", err)
	}
}

func TestReadBinaryBadMagicHint(t *testing.T) {
	_, err := ReadBinary(bytes.NewReader([]byte{0xde, 0xad, 0xbe, 0xef, 0, 0, 0, 0}))
	if err == nil {
		t.Fatal("ReadBinary accepted bad magic")
	}
	for _, want := range []string{"bad magic", "PSG1", "0x50534731"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("bad-magic error %q does not mention %q", err, want)
		}
	}
}

func TestLoadFileRoundTrip(t *testing.T) {
	g, err := FromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	dir := t.TempDir()
	for _, name := range []string{"g.txt", "g.bin", "g.txt.gz", "g.bin.gz"} {
		path := filepath.Join(dir, name)
		if err := SaveFile(path, g); err != nil {
			t.Fatalf("SaveFile(%s): %v", name, err)
		}
		got, err := LoadFile(path)
		if err != nil {
			t.Fatalf("LoadFile(%s): %v", name, err)
		}
		if got.NumVertices() != g.NumVertices() || got.NumEdges() != g.NumEdges() {
			t.Errorf("%s: round trip changed size: got %d/%d want %d/%d",
				name, got.NumVertices(), got.NumEdges(), g.NumVertices(), g.NumEdges())
		}
	}
}
