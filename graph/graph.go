// Package graph provides the compressed-sparse-row (CSR) undirected graph
// representation used by all structural clustering algorithms in this module.
//
// The representation follows Definition 2.11 of the ppSCAN paper: a graph is
// a pair of arrays (off, dst) where dst[off[u]:off[u+1]] holds the sorted
// neighbor list of vertex u. Every undirected edge {u, v} is stored twice,
// once as (u, v) and once as (v, u). The index of the directed edge (u, v)
// inside dst is called the edge offset e(u, v); similarity values are stored
// per edge offset, and the reverse offset e(v, u) is recovered by binary
// search in v's sorted neighbor list.
//
// Graphs are immutable once built. Build one with FromEdges, FromAdjacency,
// or one of the readers in io.go.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable undirected graph in CSR form.
//
// Invariants (checked by Validate):
//   - len(Off) == NumVertices()+1, Off[0] == 0, Off is non-decreasing.
//   - len(Dst) == Off[len(Off)-1] and equals twice the number of undirected
//     edges.
//   - each neighbor list Dst[Off[u]:Off[u+1]] is strictly increasing (no
//     duplicate edges), contains no self loop, and every entry is a valid
//     vertex id.
//   - the graph is symmetric: v appears in u's list iff u appears in v's.
type Graph struct {
	// Off is the offset array; neighbors of u live in Dst[Off[u]:Off[u+1]].
	Off []int64
	// Dst is the concatenated, per-vertex-sorted adjacency array.
	Dst []int32
	// epoch is the snapshot version when the graph was produced by a
	// Store.Commit; graphs built any other way are epoch 0. The epoch does
	// not participate in structural equality — it identifies which version
	// of a mutating Store this snapshot captured.
	epoch uint64
}

// Epoch returns the snapshot version this graph captured: 0 for graphs
// built directly (FromEdges, readers), the committing Store's version for
// snapshots produced by Store.Commit.
func (g *Graph) Epoch() uint64 { return g.epoch }

// NumVertices returns |V|.
func (g *Graph) NumVertices() int32 {
	return int32(len(g.Off) - 1)
}

// NumEdges returns the number of undirected edges |E| (half the length of
// the directed adjacency array).
func (g *Graph) NumEdges() int64 {
	return int64(len(g.Dst)) / 2
}

// NumDirectedEdges returns len(Dst), i.e. 2|E|.
func (g *Graph) NumDirectedEdges() int64 {
	return int64(len(g.Dst))
}

// Degree returns d[u], the number of neighbors of u.
func (g *Graph) Degree(u int32) int32 {
	return int32(g.Off[u+1] - g.Off[u])
}

// Neighbors returns the sorted neighbor slice of u. The slice aliases the
// graph's internal storage and must not be modified.
func (g *Graph) Neighbors(u int32) []int32 {
	return g.Dst[g.Off[u]:g.Off[u+1]]
}

// HasEdge reports whether the undirected edge {u, v} is present.
func (g *Graph) HasEdge(u, v int32) bool {
	return g.EdgeOffset(u, v) >= 0
}

// EdgeOffset returns the directed edge offset e(u, v), i.e. the index i in
// [Off[u], Off[u+1]) with Dst[i] == v, or -1 when the edge does not exist.
// It runs a binary search over u's sorted neighbor list, exactly as the
// reverse-edge-offset computation in pSCAN's similarity-value reuse.
func (g *Graph) EdgeOffset(u, v int32) int64 {
	lo, hi := g.Off[u], g.Off[u+1]
	for lo < hi {
		mid := lo + (hi-lo)/2
		switch {
		case g.Dst[mid] < v:
			lo = mid + 1
		case g.Dst[mid] > v:
			hi = mid
		default:
			return mid
		}
	}
	return -1
}

// EdgeEndpoint returns the source vertex of the directed edge stored at
// offset e; that is, the u with Off[u] <= e < Off[u+1]. It is O(log |V|).
func (g *Graph) EdgeEndpoint(e int64) int32 {
	// sort.Search finds the first u+1 with Off[u+1] > e.
	u := sort.Search(len(g.Off)-1, func(i int) bool { return g.Off[i+1] > e })
	return int32(u)
}

// MaxDegree returns the maximum vertex degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int32 {
	var maxd int32
	for u := int32(0); u < g.NumVertices(); u++ {
		if d := g.Degree(u); d > maxd {
			maxd = d
		}
	}
	return maxd
}

// AvgDegree returns the average vertex degree 2|E|/|V|.
func (g *Graph) AvgDegree() float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	return float64(g.NumDirectedEdges()) / float64(n)
}

// Validate checks every structural invariant of the CSR representation and
// returns a descriptive error for the first violation found.
func (g *Graph) Validate() error {
	if len(g.Off) == 0 {
		return fmt.Errorf("graph: empty offset array")
	}
	if g.Off[0] != 0 {
		return fmt.Errorf("graph: Off[0] = %d, want 0", g.Off[0])
	}
	n := g.NumVertices()
	for u := int32(0); u < n; u++ {
		if g.Off[u+1] < g.Off[u] {
			return fmt.Errorf("graph: Off not monotone at %d: %d > %d", u, g.Off[u], g.Off[u+1])
		}
	}
	if g.Off[n] != int64(len(g.Dst)) {
		return fmt.Errorf("graph: Off[%d] = %d, want len(Dst) = %d", n, g.Off[n], len(g.Dst))
	}
	for u := int32(0); u < n; u++ {
		nbrs := g.Neighbors(u)
		for i, v := range nbrs {
			if v < 0 || v >= n {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", u, v)
			}
			if v == u {
				return fmt.Errorf("graph: self loop at vertex %d", u)
			}
			if i > 0 && nbrs[i-1] >= v {
				return fmt.Errorf("graph: neighbors of %d not strictly increasing at index %d (%d >= %d)",
					u, i, nbrs[i-1], v)
			}
			if g.EdgeOffset(v, u) < 0 {
				return fmt.Errorf("graph: asymmetric edge (%d,%d): reverse missing", u, v)
			}
		}
	}
	return nil
}

// Edge is an undirected edge for use with FromEdges.
type Edge struct {
	U, V int32
}

// FromEdges builds a Graph with n vertices from an arbitrary undirected edge
// list. Self loops are dropped, duplicate edges (in either orientation) are
// merged, and neighbor lists are sorted. It returns an error if any endpoint
// is outside [0, n).
func FromEdges(n int32, edges []Edge) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	// Normalize: drop self loops, orient u < v, validate range.
	norm := make([]Edge, 0, len(edges))
	for _, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
		if e.U == e.V {
			continue
		}
		if e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		norm = append(norm, e)
	}
	sort.Slice(norm, func(i, j int) bool {
		if norm[i].U != norm[j].U {
			return norm[i].U < norm[j].U
		}
		return norm[i].V < norm[j].V
	})
	// Deduplicate.
	uniq := norm[:0]
	for i, e := range norm {
		if i == 0 || e != norm[i-1] {
			uniq = append(uniq, e)
		}
	}
	return fromOrientedEdges(n, uniq), nil
}

// fromOrientedEdges assumes edges are deduplicated and oriented u < v.
func fromOrientedEdges(n int32, edges []Edge) *Graph {
	deg := make([]int64, n+1)
	for _, e := range edges {
		deg[e.U+1]++
		deg[e.V+1]++
	}
	off := make([]int64, n+1)
	for i := int32(1); i <= n; i++ {
		off[i] = off[i-1] + deg[i]
	}
	dst := make([]int32, off[n])
	cursor := make([]int64, n)
	copy(cursor, off[:n])
	for _, e := range edges {
		dst[cursor[e.U]] = e.V
		cursor[e.U]++
		dst[cursor[e.V]] = e.U
		cursor[e.V]++
	}
	g := &Graph{Off: off, Dst: dst}
	g.sortAdjacency()
	return g
}

// FromAdjacency builds a Graph from an adjacency list representation. The
// input lists may be unsorted and may contain duplicates or self loops; the
// union of (u -> v) and (v -> u) entries determines the edge set.
func FromAdjacency(adj [][]int32) (*Graph, error) {
	n := int32(len(adj))
	var edges []Edge
	for u, nbrs := range adj {
		for _, v := range nbrs {
			edges = append(edges, Edge{int32(u), v})
		}
	}
	return FromEdges(n, edges)
}

// sortAdjacency orders each neighbor run ascending; construction only.
//
//lint:snapfreeze pre-publication: called from FromEdges before the graph is returned to any caller
func (g *Graph) sortAdjacency() {
	n := g.NumVertices()
	for u := int32(0); u < n; u++ {
		nbrs := g.Dst[g.Off[u]:g.Off[u+1]]
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
	}
}

// Edges returns the undirected edge list with u < v, sorted lexicographically.
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.NumEdges())
	for u := int32(0); u < g.NumVertices(); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				edges = append(edges, Edge{u, v})
			}
		}
	}
	return edges
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	off := make([]int64, len(g.Off))
	copy(off, g.Off)
	dst := make([]int32, len(g.Dst))
	copy(dst, g.Dst)
	return &Graph{Off: off, Dst: dst, epoch: g.epoch}
}

// InducedSubgraph returns the subgraph induced by the given vertex set,
// relabeled to [0, len(vertices)), plus the mapping from new id to old id.
// Duplicate ids in vertices are an error.
func (g *Graph) InducedSubgraph(vertices []int32) (*Graph, []int32, error) {
	newID := make(map[int32]int32, len(vertices))
	order := make([]int32, len(vertices))
	for i, v := range vertices {
		if v < 0 || v >= g.NumVertices() {
			return nil, nil, fmt.Errorf("graph: vertex %d out of range", v)
		}
		if _, dup := newID[v]; dup {
			return nil, nil, fmt.Errorf("graph: duplicate vertex %d in subgraph set", v)
		}
		newID[v] = int32(i)
		order[i] = v
	}
	var edges []Edge
	for _, v := range vertices {
		nv := newID[v]
		for _, w := range g.Neighbors(v) {
			if nw, ok := newID[w]; ok && nv < nw {
				edges = append(edges, Edge{nv, nw})
			}
		}
	}
	sg, err := FromEdges(int32(len(vertices)), edges)
	if err != nil {
		return nil, nil, err
	}
	return sg, order, nil
}

// ConnectedComponents labels each vertex with a component id in [0, #comps)
// and returns the labels plus the number of components.
func (g *Graph) ConnectedComponents() ([]int32, int32) {
	n := g.NumVertices()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var next int32
	queue := make([]int32, 0, 64)
	for s := int32(0); s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = next
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, v := range g.Neighbors(u) {
				if comp[v] < 0 {
					comp[v] = next
					queue = append(queue, v)
				}
			}
		}
		next++
	}
	return comp, next
}

// Stats summarizes a graph in the shape of Tables 1 and 2 of the paper.
type Stats struct {
	Name        string
	NumVertices int32
	NumEdges    int64 // directed edge count 2|E|, as reported in the paper's tables
	AvgDegree   float64
	MaxDegree   int32
}

// ComputeStats gathers Table 1/2-style statistics for g.
func ComputeStats(name string, g *Graph) Stats {
	return Stats{
		Name:        name,
		NumVertices: g.NumVertices(),
		NumEdges:    g.NumDirectedEdges(),
		AvgDegree:   g.AvgDegree(),
		MaxDegree:   g.MaxDegree(),
	}
}

// String formats the statistics as a table row.
func (s Stats) String() string {
	return fmt.Sprintf("%-16s |V|=%-10d |E|=%-12d d=%-8.1f max d=%d",
		s.Name, s.NumVertices, s.NumEdges, s.AvgDegree, s.MaxDegree)
}

// DegreeHistogram returns a map from degree to the number of vertices having
// that degree.
func (g *Graph) DegreeHistogram() map[int32]int64 {
	h := make(map[int32]int64)
	for u := int32(0); u < g.NumVertices(); u++ {
		h[g.Degree(u)]++
	}
	return h
}

// SumDegreeSquares returns sum over v of d[v]^2, which bounds SCAN's total
// similarity workload (Theorem 3.4 states the workload is 2*sum d^2).
func (g *Graph) SumDegreeSquares() int64 {
	var s int64
	for u := int32(0); u < g.NumVertices(); u++ {
		d := int64(g.Degree(u))
		s += d * d
	}
	return s
}
