package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

// triangle returns the 3-clique.
func triangle(t *testing.T) *Graph {
	t.Helper()
	g, err := FromEdges(3, []Edge{{0, 1}, {1, 2}, {0, 2}})
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	return g
}

func TestFromEdgesBasic(t *testing.T) {
	g := triangle(t)
	if got := g.NumVertices(); got != 3 {
		t.Errorf("NumVertices = %d, want 3", got)
	}
	if got := g.NumEdges(); got != 3 {
		t.Errorf("NumEdges = %d, want 3", got)
	}
	if got := g.NumDirectedEdges(); got != 6 {
		t.Errorf("NumDirectedEdges = %d, want 6", got)
	}
	for u := int32(0); u < 3; u++ {
		if got := g.Degree(u); got != 2 {
			t.Errorf("Degree(%d) = %d, want 2", u, got)
		}
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestFromEdgesDedupAndSelfLoops(t *testing.T) {
	g, err := FromEdges(4, []Edge{
		{0, 1}, {1, 0}, {0, 1}, // duplicates in both orientations
		{2, 2}, // self loop dropped
		{3, 2}, {2, 3},
	})
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	if got := g.NumEdges(); got != 2 {
		t.Fatalf("NumEdges = %d, want 2", got)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || !g.HasEdge(2, 3) {
		t.Errorf("expected edges missing")
	}
	if g.HasEdge(2, 2) {
		t.Errorf("self loop survived")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestFromEdgesOutOfRange(t *testing.T) {
	if _, err := FromEdges(2, []Edge{{0, 2}}); err == nil {
		t.Errorf("expected error for out-of-range endpoint")
	}
	if _, err := FromEdges(2, []Edge{{-1, 0}}); err == nil {
		t.Errorf("expected error for negative endpoint")
	}
	if _, err := FromEdges(-1, nil); err == nil {
		t.Errorf("expected error for negative vertex count")
	}
}

func TestEmptyGraph(t *testing.T) {
	g, err := FromEdges(0, nil)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Errorf("empty graph has v=%d e=%d", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if g.AvgDegree() != 0 {
		t.Errorf("AvgDegree = %f, want 0", g.AvgDegree())
	}
	if g.MaxDegree() != 0 {
		t.Errorf("MaxDegree = %d, want 0", g.MaxDegree())
	}
}

func TestIsolatedVertices(t *testing.T) {
	g, err := FromEdges(5, []Edge{{1, 3}})
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	for _, u := range []int32{0, 2, 4} {
		if g.Degree(u) != 0 {
			t.Errorf("Degree(%d) = %d, want 0", u, g.Degree(u))
		}
		if len(g.Neighbors(u)) != 0 {
			t.Errorf("Neighbors(%d) non-empty", u)
		}
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestEdgeOffsetRoundTrip(t *testing.T) {
	g := randomGraph(t, 60, 300, 7)
	n := g.NumVertices()
	for u := int32(0); u < n; u++ {
		for i, v := range g.Neighbors(u) {
			e := g.EdgeOffset(u, v)
			if e != g.Off[u]+int64(i) {
				t.Fatalf("EdgeOffset(%d,%d) = %d, want %d", u, v, e, g.Off[u]+int64(i))
			}
			if g.Dst[e] != v {
				t.Fatalf("Dst[e(%d,%d)] = %d, want %d", u, v, g.Dst[e], v)
			}
			if src := g.EdgeEndpoint(e); src != u {
				t.Fatalf("EdgeEndpoint(%d) = %d, want %d", e, src, u)
			}
			// The reverse offset must exist and point back.
			re := g.EdgeOffset(v, u)
			if re < 0 || g.Dst[re] != u {
				t.Fatalf("reverse edge of (%d,%d) broken", u, v)
			}
		}
	}
	if g.EdgeOffset(0, n-1) >= 0 == !g.HasEdge(0, n-1) {
		t.Errorf("HasEdge and EdgeOffset disagree")
	}
}

func TestEdgeOffsetMissing(t *testing.T) {
	g := triangle(t)
	gg, err := FromEdges(4, []Edge{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	if gg.EdgeOffset(0, 2) != -1 {
		t.Errorf("EdgeOffset for absent edge should be -1")
	}
	if gg.EdgeOffset(0, 3) != -1 {
		t.Errorf("EdgeOffset for absent edge should be -1")
	}
	_ = g
}

func TestFromAdjacency(t *testing.T) {
	g, err := FromAdjacency([][]int32{
		{1, 2, 2}, // duplicate entry
		{0},
		{0, 0},
	})
	if err != nil {
		t.Fatalf("FromAdjacency: %v", err)
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(0, 2) {
		t.Errorf("edges missing")
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := randomGraph(t, 40, 150, 3)
	edges := g.Edges()
	g2, err := FromEdges(g.NumVertices(), edges)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	if !reflect.DeepEqual(g.Off, g2.Off) || !reflect.DeepEqual(g.Dst, g2.Dst) {
		t.Errorf("Edges/FromEdges round trip changed the graph")
	}
}

func TestClone(t *testing.T) {
	g := triangle(t)
	c := g.Clone()
	c.Dst[0] = 99
	if g.Dst[0] == 99 {
		t.Errorf("Clone shares storage")
	}
}

func TestInducedSubgraph(t *testing.T) {
	// Path 0-1-2-3 plus edge 0-3.
	g, err := FromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}, {0, 3}})
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	sg, order, err := g.InducedSubgraph([]int32{3, 1, 0})
	if err != nil {
		t.Fatalf("InducedSubgraph: %v", err)
	}
	if want := []int32{3, 1, 0}; !reflect.DeepEqual(order, want) {
		t.Errorf("order = %v, want %v", order, want)
	}
	// New labels: 3->0, 1->1, 0->2. Edges among {0,1,3}: (0,1),(0,3).
	if sg.NumEdges() != 2 {
		t.Fatalf("subgraph edges = %d, want 2", sg.NumEdges())
	}
	if !sg.HasEdge(1, 2) { // old (1,0)
		t.Errorf("missing relabeled edge (1,2)")
	}
	if !sg.HasEdge(0, 2) { // old (3,0)
		t.Errorf("missing relabeled edge (0,2)")
	}
	if _, _, err := g.InducedSubgraph([]int32{0, 0}); err == nil {
		t.Errorf("expected duplicate-vertex error")
	}
	if _, _, err := g.InducedSubgraph([]int32{42}); err == nil {
		t.Errorf("expected out-of-range error")
	}
}

func TestConnectedComponents(t *testing.T) {
	g, err := FromEdges(7, []Edge{{0, 1}, {1, 2}, {3, 4}})
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	comp, k := g.ConnectedComponents()
	if k != 4 { // {0,1,2}, {3,4}, {5}, {6}
		t.Fatalf("components = %d, want 4", k)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Errorf("0,1,2 should share a component")
	}
	if comp[3] != comp[4] {
		t.Errorf("3,4 should share a component")
	}
	if comp[5] == comp[6] || comp[5] == comp[0] || comp[6] == comp[3] {
		t.Errorf("isolated vertices should be alone: %v", comp)
	}
}

func TestStats(t *testing.T) {
	g, err := FromEdges(4, []Edge{{0, 1}, {0, 2}, {0, 3}})
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	s := ComputeStats("star", g)
	if s.NumVertices != 4 || s.NumEdges != 6 || s.MaxDegree != 3 {
		t.Errorf("stats = %+v", s)
	}
	if s.AvgDegree != 1.5 {
		t.Errorf("AvgDegree = %f, want 1.5", s.AvgDegree)
	}
	if !strings.Contains(s.String(), "star") {
		t.Errorf("String() should contain the name: %q", s.String())
	}
}

func TestDegreeHistogram(t *testing.T) {
	g, err := FromEdges(4, []Edge{{0, 1}, {0, 2}, {0, 3}})
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	h := g.DegreeHistogram()
	if h[3] != 1 || h[1] != 3 {
		t.Errorf("histogram = %v", h)
	}
}

func TestSumDegreeSquares(t *testing.T) {
	g, err := FromEdges(4, []Edge{{0, 1}, {0, 2}, {0, 3}})
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	if got := g.SumDegreeSquares(); got != 9+1+1+1 {
		t.Errorf("SumDegreeSquares = %d, want 12", got)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Graph)
	}{
		{"unsorted", func(g *Graph) { g.Dst[0], g.Dst[1] = g.Dst[1], g.Dst[0] }},
		{"self-loop", func(g *Graph) { g.Dst[0] = 0 }},
		{"out-of-range", func(g *Graph) { g.Dst[0] = 99 }},
		{"bad-off0", func(g *Graph) { g.Off[0] = 1 }},
		{"non-monotone", func(g *Graph) { g.Off[1] = g.Off[2] + 1 }},
		{"asymmetric", func(g *Graph) {
			// Remove 0 from 1's list by replacing it with 2 (already there
			// is fine; duplicates also invalid, either way it must fail).
			nbrs := g.Dst[g.Off[1]:g.Off[2]]
			for i, v := range nbrs {
				if v == 0 {
					nbrs[i] = 1 + int32(i) // corrupt
				}
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := triangle(t).Clone()
			tc.mutate(g)
			if err := g.Validate(); err == nil {
				t.Errorf("Validate accepted corrupted graph (%s)", tc.name)
			}
		})
	}
}

func TestReadEdgeListText(t *testing.T) {
	const text = `# a comment
% another comment
0 1
1 2 ignored-extra-field
2 0

`
	g, err := ReadEdgeList(strings.NewReader(text), false)
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got v=%d e=%d, want 3,3", g.NumVertices(), g.NumEdges())
	}
}

func TestReadEdgeListCompact(t *testing.T) {
	const text = "100 200\n200 300\n"
	g, err := ReadEdgeList(strings.NewReader(text), true)
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if g.NumVertices() != 3 {
		t.Fatalf("compacted |V| = %d, want 3", g.NumVertices())
	}
	if g.NumEdges() != 2 {
		t.Fatalf("|E| = %d, want 2", g.NumEdges())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for _, bad := range []string{"0\n", "x y\n", "0 y\n", "-1 2\n"} {
		if _, err := ReadEdgeList(strings.NewReader(bad), false); err == nil {
			t.Errorf("ReadEdgeList(%q) should fail", bad)
		}
	}
}

func TestTextRoundTrip(t *testing.T) {
	g := randomGraph(t, 50, 200, 11)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatalf("WriteEdgeList: %v", err)
	}
	g2, err := ReadEdgeList(&buf, false)
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	// The round trip may shrink |V| if trailing vertices are isolated; pad.
	if g2.NumVertices() > g.NumVertices() {
		t.Fatalf("round trip grew the vertex set")
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed |E|: %d -> %d", g.NumEdges(), g2.NumEdges())
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := randomGraph(t, 80, 400, 5)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if !reflect.DeepEqual(g.Off, g2.Off) || !reflect.DeepEqual(g.Dst, g2.Dst) {
		t.Errorf("binary round trip changed the graph")
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Errorf("short read should fail")
	}
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	if _, err := ReadBinary(&buf); err == nil {
		t.Errorf("bad magic should fail")
	}
}

func TestLoadSaveFile(t *testing.T) {
	g := randomGraph(t, 30, 100, 2)
	for _, name := range []string{"g.txt", "g.bin", "g.txt.gz", "g.bin.gz"} {
		path := t.TempDir() + "/" + name
		if err := SaveFile(path, g); err != nil {
			t.Fatalf("SaveFile(%s): %v", name, err)
		}
		g2, err := LoadFile(path)
		if err != nil {
			t.Fatalf("LoadFile(%s): %v", name, err)
		}
		if g2.NumEdges() != g.NumEdges() {
			t.Errorf("%s: |E| %d -> %d", name, g.NumEdges(), g2.NumEdges())
		}
	}
	if _, err := LoadFile(t.TempDir() + "/missing.bin"); err == nil {
		t.Errorf("LoadFile of missing file should fail")
	}
}

// Property: FromEdges always yields a valid, symmetric graph regardless of
// the (possibly messy) input edge list.
func TestFromEdgesAlwaysValidQuick(t *testing.T) {
	f := func(seed int64, nRaw uint8, mRaw uint16) bool {
		n := int32(nRaw%50) + 1
		rng := rand.New(rand.NewSource(seed))
		m := int(mRaw % 400)
		edges := make([]Edge, m)
		for i := range edges {
			edges[i] = Edge{int32(rng.Intn(int(n))), int32(rng.Intn(int(n)))}
		}
		g, err := FromEdges(n, edges)
		if err != nil {
			return false
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: degrees sum to the directed edge count.
func TestDegreeSumQuick(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraphSeed(seed, 40, 160)
		var sum int64
		for u := int32(0); u < g.NumVertices(); u++ {
			sum += int64(g.Degree(u))
		}
		return sum == g.NumDirectedEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func randomGraph(t *testing.T, n int32, m int, seed int64) *Graph {
	t.Helper()
	return randomGraphSeed(seed, n, m)
}

func randomGraphSeed(seed int64, n int32, m int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{int32(rng.Intn(int(n))), int32(rng.Intn(int(n)))}
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

func TestNeighborsSorted(t *testing.T) {
	g := randomGraph(t, 70, 500, 13)
	for u := int32(0); u < g.NumVertices(); u++ {
		nbrs := g.Neighbors(u)
		if !sort.SliceIsSorted(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] }) {
			t.Fatalf("neighbors of %d not sorted", u)
		}
	}
}
