package graph

import (
	"math/rand"
	"testing"
)

func TestRelabelIdentity(t *testing.T) {
	g := randomGraph(t, 40, 150, 21)
	perm := make([]int32, g.NumVertices())
	for i := range perm {
		perm[i] = int32(i)
	}
	h, err := g.Relabel(perm)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != g.NumEdges() {
		t.Fatalf("identity relabel changed |E|")
	}
	for u := int32(0); u < g.NumVertices(); u++ {
		if g.Degree(u) != h.Degree(u) {
			t.Fatalf("identity relabel changed degree of %d", u)
		}
	}
}

func TestRelabelPreservesStructure(t *testing.T) {
	g := randomGraph(t, 50, 200, 22)
	rng := rand.New(rand.NewSource(9))
	perm := make([]int32, g.NumVertices())
	for i, p := range rng.Perm(int(g.NumVertices())) {
		perm[i] = int32(p)
	}
	h, err := g.Relabel(perm)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != g.NumEdges() {
		t.Fatalf("|E| changed: %d -> %d", g.NumEdges(), h.NumEdges())
	}
	for u := int32(0); u < g.NumVertices(); u++ {
		if g.Degree(u) != h.Degree(perm[u]) {
			t.Fatalf("degree of %d not preserved", u)
		}
		for _, v := range g.Neighbors(u) {
			if !h.HasEdge(perm[u], perm[v]) {
				t.Fatalf("edge (%d,%d) lost", u, v)
			}
		}
	}
}

func TestRelabelRejectsBadPermutations(t *testing.T) {
	g := randomGraph(t, 10, 20, 23)
	cases := [][]int32{
		{0, 1},                          // wrong length
		{0, 1, 2, 3, 4, 5, 6, 7, 8, 8},  // duplicate
		{0, 1, 2, 3, 4, 5, 6, 7, 8, 10}, // out of range
		{0, 1, 2, 3, 4, 5, 6, 7, 8, -1}, // negative
	}
	for _, perm := range cases {
		if _, err := g.Relabel(perm); err == nil {
			t.Errorf("Relabel accepted bad permutation %v", perm)
		}
	}
}

func TestDegreeOrderPermutation(t *testing.T) {
	g := randomGraph(t, 60, 300, 24)
	perm := g.DegreeOrderPermutation()
	h, err := g.Relabel(perm)
	if err != nil {
		t.Fatal(err)
	}
	for u := int32(0); u+1 < h.NumVertices(); u++ {
		if h.Degree(u) < h.Degree(u+1) {
			t.Fatalf("degrees not non-increasing at %d: %d < %d", u, h.Degree(u), h.Degree(u+1))
		}
	}
}

func TestBFSOrderPermutation(t *testing.T) {
	// Path: BFS from 0 keeps order; BFS from middle spreads outward.
	g, _ := FromEdges(5, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	perm := g.BFSOrderPermutation(2)
	if perm[2] != 0 {
		t.Fatalf("root not first: %v", perm)
	}
	// Neighbors of the root get labels 1 and 2.
	if perm[1]+perm[3] != 3 || perm[1] == perm[3] {
		t.Fatalf("BFS frontier labels wrong: %v", perm)
	}
	// All labels distinct and in range.
	seen := map[int32]bool{}
	for _, p := range perm {
		if p < 0 || p >= 5 || seen[p] {
			t.Fatalf("invalid permutation %v", perm)
		}
		seen[p] = true
	}
	// Disconnected graph: unreached vertices still labeled.
	g2, _ := FromEdges(4, []Edge{{0, 1}})
	perm2 := g2.BFSOrderPermutation(0)
	seen = map[int32]bool{}
	for _, p := range perm2 {
		if p < 0 || p >= 4 || seen[p] {
			t.Fatalf("invalid permutation %v", perm2)
		}
		seen[p] = true
	}
	// Out-of-range root falls back to natural order.
	perm3 := g2.BFSOrderPermutation(-1)
	for i, p := range perm3 {
		if p != int32(i) {
			t.Fatalf("fallback order wrong: %v", perm3)
		}
	}
}
