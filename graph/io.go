package graph

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"ppscan/internal/fault"
)

// ReadEdgeList parses a whitespace-separated edge-list stream in the SNAP
// style: one "u v" pair per line, '#' or '%' lines are comments. Vertex ids
// are arbitrary non-negative integers; they are compacted to [0, n) in order
// of first appearance when compact is true, otherwise the vertex count is
// max(id)+1.
func ReadEdgeList(r io.Reader, compact bool) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []Edge
	var maxID int32 = -1
	remap := make(map[int32]int32)
	mapID := func(raw int32) int32 {
		if !compact {
			if raw > maxID {
				maxID = raw
			}
			return raw
		}
		if id, ok := remap[raw]; ok {
			return id
		}
		id := int32(len(remap))
		remap[raw] = id
		return id
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want at least two fields, got %q", lineNo, line)
		}
		u64, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex %q: %v", lineNo, fields[0], err)
		}
		v64, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex %q: %v", lineNo, fields[1], err)
		}
		if u64 < 0 || v64 < 0 {
			return nil, fmt.Errorf("graph: line %d: negative vertex id", lineNo)
		}
		edges = append(edges, Edge{mapID(int32(u64)), mapID(int32(v64))})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: scanning edge list: %w", err)
	}
	n := maxID + 1
	if compact {
		n = int32(len(remap))
	}
	return FromEdges(n, edges)
}

// WriteEdgeList writes the graph as "u v" lines with u < v, one undirected
// edge per line, preceded by a comment header.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# vertices %d edges %d\n", g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	for u := int32(0); u < g.NumVertices(); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// binaryMagic identifies the binary CSR format ("PSG1": ppSCAN graph v1).
const binaryMagic = 0x50534731

// WriteBinary serializes the CSR arrays in a compact little-endian binary
// format: magic, |V|, len(Dst), Off[1..|V|] (int64), Dst (int32). Off[0] is
// implicit (always zero).
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	hdr := []any{uint32(binaryMagic), int64(g.NumVertices()), int64(len(g.Dst))}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return fmt.Errorf("graph: writing binary header: %w", err)
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Off[1:]); err != nil {
		return fmt.Errorf("graph: writing offsets: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Dst); err != nil {
		return fmt.Errorf("graph: writing adjacency: %w", err)
	}
	return bw.Flush()
}

// maxBinaryVertices bounds the declared vertex count of a binary graph:
// vertex ids are int32, so a header declaring more vertices than int32 can
// address is corrupt by construction, and rejecting it up front keeps a
// hostile header from sizing the offset allocation.
const maxBinaryVertices = 1<<31 - 2

// binaryReadChunk is the element granularity for reading the CSR payload
// arrays. Reading in chunks and growing with append keeps peak memory
// proportional to the bytes actually present in the stream: a truncated or
// hostile file that declares n=10^12 fails at its first missing chunk
// instead of OOM-panicking on an upfront make([]int64, n+1).
const binaryReadChunk = 1 << 17

// readInt64Chunked appends count little-endian int64s from r to dst,
// reading at most binaryReadChunk elements at a time.
func readInt64Chunked(r io.Reader, dst []int64, count int64, what string) ([]int64, error) {
	buf := make([]int64, min64(count, binaryReadChunk))
	for count > 0 {
		c := buf[:min64(count, binaryReadChunk)]
		if err := binary.Read(r, binary.LittleEndian, c); err != nil {
			return nil, fmt.Errorf("graph: reading %s: %w", what, err)
		}
		dst = append(dst, c...)
		count -= int64(len(c))
	}
	return dst, nil
}

// readInt32Chunked is readInt64Chunked for int32 payloads.
func readInt32Chunked(r io.Reader, dst []int32, count int64, what string) ([]int32, error) {
	buf := make([]int32, min64(count, binaryReadChunk))
	for count > 0 {
		c := buf[:min64(count, binaryReadChunk)]
		if err := binary.Read(r, binary.LittleEndian, c); err != nil {
			return nil, fmt.Errorf("graph: reading %s: %w", what, err)
		}
		dst = append(dst, c...)
		count -= int64(len(c))
	}
	return dst, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// ReadBinary deserializes a graph written by WriteBinary and validates it.
// Every structural invariant of the format is checked and reported as a
// wrapped error — a corrupt or hostile stream can never panic a loader or
// hand an invalid CSR to the algorithms: the header sizes are bounded
// before anything is allocated, the payload is read incrementally so a
// truncated file fails without ballooning memory, and the assembled graph
// must pass Validate (monotone offsets, in-range sorted neighbors,
// symmetric edges) before it is returned.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var magic uint32
	var n, m int64
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("graph: reading binary magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %#x (want %#x: the PSG1 binary CSR format, v1 — written by WriteBinary / SaveFile with a .bin extension)", magic, uint32(binaryMagic))
	}
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("graph: reading vertex count: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, fmt.Errorf("graph: reading edge count: %w", err)
	}
	if n < 0 || m < 0 || m%2 != 0 {
		return nil, fmt.Errorf("graph: implausible sizes n=%d m=%d", n, m)
	}
	if n > maxBinaryVertices {
		return nil, fmt.Errorf("graph: vertex count %d exceeds the int32 id space", n)
	}
	// A simple graph has at most n*(n-1) directed edges; reject headers
	// that cannot possibly validate before reading (or allocating for)
	// their payload. The product is computed guarded against overflow.
	if n == 0 && m > 0 {
		return nil, fmt.Errorf("graph: %d edges with no vertices", m)
	}
	if n > 0 && m/n > n-1 {
		return nil, fmt.Errorf("graph: implausible edge count %d for %d vertices", m, n)
	}
	off := make([]int64, 1, min64(n+1, binaryReadChunk))
	off, err := readInt64Chunked(br, off, n, "offsets")
	if err != nil {
		return nil, err
	}
	dst := make([]int32, 0, min64(m, binaryReadChunk))
	dst, err = readInt32Chunked(br, dst, m, "adjacency")
	if err != nil {
		return nil, err
	}
	g := &Graph{Off: off, Dst: dst}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: binary payload invalid: %w", err)
	}
	return g, nil
}

// LoadFile reads a graph from path. The format is chosen by extension:
// ".bin" selects the binary CSR format, anything else the text edge-list
// format; a final ".gz" extension (e.g. ".txt.gz", ".bin.gz") transparently
// gunzips first.
func LoadFile(path string) (*Graph, error) {
	if err := fault.Inject(fault.GraphLoad); err != nil {
		return nil, fmt.Errorf("graph: %s: %w", path, err)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	base := path
	if strings.HasSuffix(base, ".gz") {
		zr, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("graph: %s: opening gzip stream: %w", path, err)
		}
		defer zr.Close()
		r = zr
		base = strings.TrimSuffix(base, ".gz")
	}
	if strings.HasSuffix(base, ".bin") {
		g, err := ReadBinary(r)
		if err != nil {
			return nil, fmt.Errorf("graph: %s (binary CSR format): %w", path, err)
		}
		return g, nil
	}
	g, err := ReadEdgeList(r, true)
	if err != nil {
		return nil, fmt.Errorf("graph: %s (text edge-list format): %w", path, err)
	}
	return g, nil
}

// SaveFile writes a graph to path, choosing the format by extension as in
// LoadFile (including transparent gzip for ".gz").
func SaveFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var w io.Writer = f
	base := path
	var zw *gzip.Writer
	if strings.HasSuffix(base, ".gz") {
		zw = gzip.NewWriter(f)
		w = zw
		base = strings.TrimSuffix(base, ".gz")
	}
	if strings.HasSuffix(base, ".bin") {
		err = WriteBinary(w, g)
	} else {
		err = WriteEdgeList(w, g)
	}
	if err != nil {
		return err
	}
	if zw != nil {
		return zw.Close()
	}
	return nil
}
