package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList: arbitrary text must never panic, and every accepted
// graph must satisfy all CSR invariants.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n5 5\n")
	f.Add("")
	f.Add("x y\n")
	f.Add("1000000 2\n")
	f.Add("3 4 extra\n% c\n4 3\n")
	f.Fuzz(func(t *testing.T, data string) {
		for _, compact := range []bool{true, false} {
			g, err := ReadEdgeList(strings.NewReader(data), compact)
			if err != nil {
				continue
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("accepted invalid graph (compact=%v): %v", compact, err)
			}
		}
	})
}

// FuzzReadBinary: arbitrary bytes must never panic and accepted payloads
// must validate (ReadBinary validates internally; double-check).
func FuzzReadBinary(f *testing.F) {
	var seed bytes.Buffer
	g, _ := FromEdges(3, []Edge{{0, 1}, {1, 2}})
	_ = WriteBinary(&seed, g)
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x31, 0x47, 0x53, 0x50, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("ReadBinary accepted invalid graph: %v", err)
		}
	})
}

// FuzzRoundTrip: any graph built from fuzzed edges must round-trip both
// serializations losslessly.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint8(5), []byte{0, 1, 1, 2, 3, 4})
	f.Fuzz(func(t *testing.T, nRaw uint8, pairs []byte) {
		n := int32(nRaw%40) + 1
		var edges []Edge
		for i := 0; i+1 < len(pairs); i += 2 {
			edges = append(edges, Edge{int32(pairs[i]) % n, int32(pairs[i+1]) % n})
		}
		g, err := FromEdges(n, edges)
		if err != nil {
			t.Fatalf("FromEdges on normalized input: %v", err)
		}
		var bin bytes.Buffer
		if err := WriteBinary(&bin, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadBinary(&bin)
		if err != nil {
			t.Fatal(err)
		}
		if g2.NumEdges() != g.NumEdges() || g2.NumVertices() != g.NumVertices() {
			t.Fatalf("binary round trip changed shape")
		}
		var txt bytes.Buffer
		if err := WriteEdgeList(&txt, g); err != nil {
			t.Fatal(err)
		}
		g3, err := ReadEdgeList(&txt, false)
		if err != nil {
			t.Fatal(err)
		}
		if g3.NumEdges() != g.NumEdges() {
			t.Fatalf("text round trip changed |E|")
		}
	})
}
