package graph

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// binImage hand-assembles a PSG1 binary image (magic, n, m, Off[1..n],
// Dst) without going through WriteBinary, so tests can produce structurally
// corrupt payloads that the writer would never emit.
func binImage(n, m int64, off []int64, dst []int32) []byte {
	var b bytes.Buffer
	_ = binary.Write(&b, binary.LittleEndian, uint32(binaryMagic))
	_ = binary.Write(&b, binary.LittleEndian, n)
	_ = binary.Write(&b, binary.LittleEndian, m)
	_ = binary.Write(&b, binary.LittleEndian, off)
	_ = binary.Write(&b, binary.LittleEndian, dst)
	return b.Bytes()
}

// FuzzReadEdgeList: arbitrary text must never panic, and every accepted
// graph must satisfy all CSR invariants.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n5 5\n")
	f.Add("")
	f.Add("x y\n")
	f.Add("1000000 2\n")
	f.Add("3 4 extra\n% c\n4 3\n")
	f.Fuzz(func(t *testing.T, data string) {
		for _, compact := range []bool{true, false} {
			g, err := ReadEdgeList(strings.NewReader(data), compact)
			if err != nil {
				continue
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("accepted invalid graph (compact=%v): %v", compact, err)
			}
		}
	})
}

// FuzzReadBinary: arbitrary bytes must never panic and accepted payloads
// must validate (ReadBinary validates internally; double-check).
func FuzzReadBinary(f *testing.F) {
	var seed bytes.Buffer
	g, _ := FromEdges(3, []Edge{{0, 1}, {1, 2}})
	_ = WriteBinary(&seed, g)
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x31, 0x47, 0x53, 0x50, 0, 0, 0, 0})
	// Corrupt-CSR corpus: each entry violates exactly one invariant the
	// loader must reject with a wrapped error, never a panic.
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef})                        // bad magic
	f.Add(binImage(2, 2, []int64{2, 1}, []int32{1, 0}))          // non-monotone offsets
	f.Add(binImage(2, 2, []int64{1, 2}, []int32{1, 7}))          // out-of-range neighbor
	f.Add(binImage(2, 2, []int64{1, 2}, []int32{1, 1}))          // self loop
	f.Add(binImage(2, 2, []int64{2, 2}, []int32{1, 1}))          // asymmetric edge
	f.Add(binImage(1<<40, 1<<40, nil, nil))                      // huge n and m, no payload
	f.Add(binImage(3, 1<<62, []int64{0, 0, 0}, nil))             // m beyond any simple graph
	f.Add(binImage(2, 3, []int64{2, 3}, []int32{1, 0, 0}))       // odd directed-edge count
	f.Add(binImage(4, 6, []int64{2, 4}, []int32{1, 2}))          // truncated mid-payload
	f.Add(seed.Bytes()[:len(seed.Bytes())-2])                    // truncated adjacency tail
	f.Add(binImage(0, 2, nil, []int32{0, 1}))                    // edges with no vertices
	f.Add(binImage(2, 2, []int64{1, 3}, []int32{1, 0}))          // Off[n] != len(Dst)
	f.Add(binImage(3, 4, []int64{2, 3, 4}, []int32{2, 1, 0, 0})) // neighbors not sorted
	f.Add(binImage(maxBinaryVertices+5, 0, nil, nil))            // n past the int32 id space
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("ReadBinary accepted invalid graph: %v", err)
		}
	})
}

// FuzzRoundTrip: any graph built from fuzzed edges must round-trip both
// serializations losslessly.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint8(5), []byte{0, 1, 1, 2, 3, 4})
	f.Fuzz(func(t *testing.T, nRaw uint8, pairs []byte) {
		n := int32(nRaw%40) + 1
		var edges []Edge
		for i := 0; i+1 < len(pairs); i += 2 {
			edges = append(edges, Edge{int32(pairs[i]) % n, int32(pairs[i+1]) % n})
		}
		g, err := FromEdges(n, edges)
		if err != nil {
			t.Fatalf("FromEdges on normalized input: %v", err)
		}
		var bin bytes.Buffer
		if err := WriteBinary(&bin, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadBinary(&bin)
		if err != nil {
			t.Fatal(err)
		}
		if g2.NumEdges() != g.NumEdges() || g2.NumVertices() != g.NumVertices() {
			t.Fatalf("binary round trip changed shape")
		}
		var txt bytes.Buffer
		if err := WriteEdgeList(&txt, g); err != nil {
			t.Fatal(err)
		}
		g3, err := ReadEdgeList(&txt, false)
		if err != nil {
			t.Fatal(err)
		}
		if g3.NumEdges() != g.NumEdges() {
			t.Fatalf("text round trip changed |E|")
		}
	})
}
