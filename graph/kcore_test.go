package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteCoreness computes coreness by repeated peeling (O(V^2 E), for tiny
// graphs only).
func bruteCoreness(g *Graph) []int32 {
	n := g.NumVertices()
	core := make([]int32, n)
	alive := make([]bool, n)
	deg := make([]int32, n)
	for k := int32(0); ; k++ {
		// Start from the full graph each round; peel everything < k.
		for u := int32(0); u < n; u++ {
			alive[u] = true
			deg[u] = g.Degree(u)
		}
		changed := true
		for changed {
			changed = false
			for u := int32(0); u < n; u++ {
				if alive[u] && deg[u] < k {
					alive[u] = false
					changed = true
					for _, v := range g.Neighbors(u) {
						if alive[v] {
							deg[v]--
						}
					}
				}
			}
		}
		any := false
		for u := int32(0); u < n; u++ {
			if alive[u] {
				core[u] = k
				any = true
			}
		}
		if !any {
			return core
		}
	}
}

func TestKCoreKnownShapes(t *testing.T) {
	// Clique K5: everyone coreness 4.
	clique, _ := FromEdges(5, []Edge{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4}, {3, 4}})
	for u, c := range clique.KCoreDecomposition() {
		if c != 4 {
			t.Errorf("K5 coreness of %d = %d", u, c)
		}
	}
	if clique.Degeneracy() != 4 {
		t.Errorf("K5 degeneracy = %d", clique.Degeneracy())
	}
	// Star: hub and leaves all coreness 1.
	star, _ := FromEdges(5, []Edge{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	for u, c := range star.KCoreDecomposition() {
		if c != 1 {
			t.Errorf("star coreness of %d = %d", u, c)
		}
	}
	// Path: coreness 1 everywhere; isolated vertex coreness 0.
	path, _ := FromEdges(4, []Edge{{0, 1}, {1, 2}})
	want := []int32{1, 1, 1, 0}
	for u, c := range path.KCoreDecomposition() {
		if c != want[u] {
			t.Errorf("path coreness of %d = %d, want %d", u, c, want[u])
		}
	}
	// Empty graph.
	empty, _ := FromEdges(0, nil)
	if got := empty.KCoreDecomposition(); got != nil {
		t.Errorf("empty decomposition = %v", got)
	}
}

func TestKCoreCliquePlusTail(t *testing.T) {
	// K4 with a pendant path: clique members coreness 3, path coreness 1.
	g, _ := FromEdges(6, []Edge{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {3, 4}, {4, 5}})
	core := g.KCoreDecomposition()
	for u := int32(0); u < 4; u++ {
		if core[u] != 3 {
			t.Errorf("clique member %d coreness = %d, want 3", u, core[u])
		}
	}
	if core[4] != 1 || core[5] != 1 {
		t.Errorf("tail coreness = %d, %d, want 1, 1", core[4], core[5])
	}
}

func TestKCoreMatchesBruteQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int32(rng.Intn(30) + 2)
		m := rng.Intn(120)
		edges := make([]Edge, m)
		for i := range edges {
			edges[i] = Edge{int32(rng.Intn(int(n))), int32(rng.Intn(int(n)))}
		}
		g, err := FromEdges(n, edges)
		if err != nil {
			return false
		}
		fast := g.KCoreDecomposition()
		slow := bruteCoreness(g)
		for u := range fast {
			if fast[u] != slow[u] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestKCoreInvariants(t *testing.T) {
	g := randomGraph(t, 200, 1500, 77)
	core := g.KCoreDecomposition()
	for u := int32(0); u < g.NumVertices(); u++ {
		if core[u] > g.Degree(u) {
			t.Fatalf("coreness of %d exceeds its degree", u)
		}
		// Each vertex has >= core[u] neighbors with coreness >= core[u].
		cnt := int32(0)
		for _, v := range g.Neighbors(u) {
			if core[v] >= core[u] {
				cnt++
			}
		}
		if cnt < core[u] {
			t.Fatalf("vertex %d: only %d neighbors at coreness >= %d", u, cnt, core[u])
		}
	}
}
