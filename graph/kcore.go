package graph

// KCoreDecomposition computes each vertex's coreness: the largest k such
// that the vertex belongs to the k-core (the maximal subgraph in which
// every vertex has degree ≥ k). It runs the standard peeling algorithm in
// O(|V| + |E|) using bucketed degrees.
//
// Coreness is a useful companion statistic to structural clustering: SCAN
// cores at high µ are necessarily high-coreness vertices, and dataset
// characterization tables often report the maximum coreness (degeneracy).
func (g *Graph) KCoreDecomposition() []int32 {
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	deg := make([]int32, n)
	maxDeg := int32(0)
	for u := int32(0); u < n; u++ {
		deg[u] = g.Degree(u)
		if deg[u] > maxDeg {
			maxDeg = deg[u]
		}
	}
	// Bucket sort vertices by degree.
	bin := make([]int32, maxDeg+2)
	for u := int32(0); u < n; u++ {
		bin[deg[u]]++
	}
	start := int32(0)
	for d := int32(0); d <= maxDeg; d++ {
		count := bin[d]
		bin[d] = start
		start += count
	}
	pos := make([]int32, n)  // vertex -> position in vert
	vert := make([]int32, n) // sorted by current degree
	for u := int32(0); u < n; u++ {
		pos[u] = bin[deg[u]]
		vert[pos[u]] = u
		bin[deg[u]]++
	}
	// Restore bin starts.
	for d := maxDeg; d >= 1; d-- {
		bin[d] = bin[d-1]
	}
	bin[0] = 0
	// Peel in increasing degree order.
	core := make([]int32, n)
	for i := int32(0); i < n; i++ {
		u := vert[i]
		core[u] = deg[u]
		for _, v := range g.Neighbors(u) {
			if deg[v] > deg[u] {
				// Move v one bucket down: swap it with the first vertex of
				// its current bucket.
				dv := deg[v]
				pv := pos[v]
				pw := bin[dv]
				w := vert[pw]
				if v != w {
					vert[pv], vert[pw] = w, v
					pos[v], pos[w] = pw, pv
				}
				bin[dv]++
				deg[v]--
			}
		}
	}
	return core
}

// Degeneracy returns the maximum coreness (the degeneracy of the graph).
func (g *Graph) Degeneracy() int32 {
	var d int32
	for _, c := range g.KCoreDecomposition() {
		if c > d {
			d = c
		}
	}
	return d
}
