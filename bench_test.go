// Benchmarks regenerating every table and figure of the paper's evaluation
// (§6), plus ablation benches for the design choices called out in
// DESIGN.md (scheduler, task granularity, kernels).
//
// Each BenchmarkTableN/BenchmarkFigN target runs the corresponding
// expharness experiment end to end on reduced-scale surrogates; the series
// themselves can be printed with `go run ./cmd/experiments -run <id>`.
// Kernel-level micro benchmarks live in internal/intersect.
package ppscan_test

import (
	"io"
	"testing"

	"ppscan"
	"ppscan/graph"
	"ppscan/internal/core"
	"ppscan/internal/dataset"
	"ppscan/internal/expharness"
	"ppscan/internal/intersect"
	"ppscan/internal/obsv"
	"ppscan/internal/simdef"
)

// benchCfg returns the experiment configuration used by the figure benches:
// reduced dataset scale so a full `go test -bench=.` pass stays in the
// minutes range, full parameter grids unless -short.
func benchCfg(b *testing.B) expharness.Config {
	b.Helper()
	return expharness.Config{
		Scale: 0.1,
		Out:   io.Discard,
		Quick: testing.Short(),
	}
}

func BenchmarkTable1Stats(b *testing.B) {
	cfg := benchCfg(b)
	for i := 0; i < b.N; i++ {
		rows := expharness.Table1(cfg)
		if len(rows) != 4 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkTable2Stats(b *testing.B) {
	cfg := benchCfg(b)
	for i := 0; i < b.N; i++ {
		rows := expharness.Table2(cfg)
		if len(rows) != 4 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkFig1Breakdown(b *testing.B) {
	cfg := benchCfg(b)
	for i := 0; i < b.N; i++ {
		if rows := expharness.Fig1(cfg); len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFig2Overall(b *testing.B) {
	cfg := benchCfg(b)
	for i := 0; i < b.N; i++ {
		if rows := expharness.Fig2(cfg); len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFig3OverallKNL(b *testing.B) {
	cfg := benchCfg(b)
	for i := 0; i < b.N; i++ {
		if rows := expharness.Fig3(cfg); len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFig4Invocations(b *testing.B) {
	cfg := benchCfg(b)
	var lastPP, lastPS float64
	for i := 0; i < b.N; i++ {
		rows := expharness.Fig4(cfg)
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
		lastPP, lastPS = 0, 0
		for _, r := range rows {
			lastPP += r.NormalizedPPSCAN()
			lastPS += r.NormalizedPSCAN()
		}
		lastPP /= float64(len(rows))
		lastPS /= float64(len(rows))
	}
	b.ReportMetric(lastPP, "ppscan-calls/edge")
	b.ReportMetric(lastPS, "pscan-calls/edge")
}

func BenchmarkFig5Vectorization(b *testing.B) {
	cfg := benchCfg(b)
	var speedup float64
	for i := 0; i < b.N; i++ {
		rows := expharness.Fig5(cfg)
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
		speedup = 0
		for _, r := range rows {
			speedup += r.Speedup()
		}
		speedup /= float64(len(rows))
	}
	b.ReportMetric(speedup, "mean-kernel-speedup")
}

func BenchmarkFig6Scalability(b *testing.B) {
	cfg := benchCfg(b)
	for i := 0; i < b.N; i++ {
		if rows := expharness.Fig6(cfg); len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFig7Robustness(b *testing.B) {
	cfg := benchCfg(b)
	for i := 0; i < b.N; i++ {
		if rows := expharness.Fig7(cfg); len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFig8Roll(b *testing.B) {
	cfg := benchCfg(b)
	var speedup float64
	for i := 0; i < b.N; i++ {
		rows := expharness.Fig8(cfg)
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
		speedup = 0
		for _, r := range rows {
			speedup += r.SelfSpeedup
		}
		speedup /= float64(len(rows))
	}
	b.ReportMetric(speedup, "mean-self-speedup")
}

// --- Per-algorithm benches on a fixed workload ---------------------------

func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	return dataset.MustLoad("webbase-sim", 0.1)
}

func benchAlgo(b *testing.B, algo ppscan.Algorithm) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ppscan.Run(g, ppscan.Options{Algorithm: algo, Epsilon: "0.2", Mu: 5})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Roles) == 0 {
			b.Fatal("empty result")
		}
	}
	b.SetBytes(g.NumDirectedEdges() * 4)
}

func BenchmarkAlgoSCAN(b *testing.B)    { benchAlgo(b, ppscan.AlgoSCAN) }
func BenchmarkAlgoPSCAN(b *testing.B)   { benchAlgo(b, ppscan.AlgoPSCAN) }
func BenchmarkAlgoPPSCAN(b *testing.B)  { benchAlgo(b, ppscan.AlgoPPSCAN) }
func BenchmarkAlgoSCANXP(b *testing.B)  { benchAlgo(b, ppscan.AlgoSCANXP) }
func BenchmarkAlgoAnySCAN(b *testing.B) { benchAlgo(b, ppscan.AlgoAnySCAN) }
func BenchmarkAlgoSCANPP(b *testing.B)  { benchAlgo(b, ppscan.AlgoSCANPP) }

// GS*-Index: one exhaustive build vs per-query cost (the §3.3 trade-off).
func BenchmarkIndexBuildVsQuery(b *testing.B) {
	g := benchGraph(b)
	b.Run("build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ppscan.BuildIndex(g, 0)
		}
	})
	ix := ppscan.BuildIndex(g, 0)
	b.Run("query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ix.Query("0.2", 5); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablation benches -----------------------------------------------------

func mustTh(b *testing.B, eps string, mu int32) simdef.Threshold {
	b.Helper()
	th, err := simdef.NewThreshold(eps, mu)
	if err != nil {
		b.Fatal(err)
	}
	return th
}

// Scheduler ablation: degree-based dynamic tasks (the paper's Algorithm 5)
// vs static equal-size blocks.
func BenchmarkAblationSchedulerDynamic(b *testing.B) {
	g := benchGraph(b)
	th := mustTh(b, "0.2", 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Run(g, th, core.Options{Kernel: intersect.PivotBlock16})
	}
}

func BenchmarkAblationSchedulerStatic(b *testing.B) {
	g := benchGraph(b)
	th := mustTh(b, "0.2", 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Run(g, th, core.Options{Kernel: intersect.PivotBlock16, StaticScheduling: true})
	}
}

// Task-granularity ablation: the paper's 32768 threshold vs finer/coarser.
func BenchmarkAblationTaskThreshold(b *testing.B) {
	g := benchGraph(b)
	th := mustTh(b, "0.2", 5)
	for _, thresh := range []int64{1024, 32768, 1 << 20} {
		thresh := thresh
		b.Run(sizeName(thresh), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Run(g, th, core.Options{Kernel: intersect.PivotBlock16, DegreeThreshold: thresh})
			}
		})
	}
}

// Kernel ablation inside full ppSCAN runs (complements the isolated kernel
// micro benches in internal/intersect).
func BenchmarkAblationPPSCANKernel(b *testing.B) {
	g := benchGraph(b)
	th := mustTh(b, "0.2", 5)
	for _, k := range intersect.Kinds() {
		k := k
		b.Run(k.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Run(g, th, core.Options{Kernel: k})
			}
		})
	}
}

// Observability overhead: a fully instrumented run (live registry —
// per-worker kernel telemetry, scheduler histograms, registry publication)
// vs a nop registry that disables collection. The instrumented/baseline
// ratio is the number quoted in EXPERIMENTS.md; the design target is < 2%.
func BenchmarkObsvOverhead(b *testing.B) {
	g := benchGraph(b)
	th := mustTh(b, "0.2", 5)
	b.Run("instrumented", func(b *testing.B) {
		reg := obsv.New()
		for i := 0; i < b.N; i++ {
			core.Run(g, th, core.Options{Kernel: intersect.PivotBlock16, Registry: reg})
		}
	})
	b.Run("nop", func(b *testing.B) {
		reg := obsv.NewNop()
		for i := 0; i < b.N; i++ {
			core.Run(g, th, core.Options{Kernel: intersect.PivotBlock16, Registry: reg})
		}
	})
}

func sizeName(n int64) string {
	switch {
	case n >= 1<<20:
		return "1Mi"
	case n >= 32768:
		return "32Ki"
	default:
		return "1Ki"
	}
}
