// Command scanshard is one shard worker of the multi-process serving tier:
// it owns a contiguous vertex range of the graph and serves superstep
// round RPCs (similarity, roles, clustering, membership) to a coordinator
// — scanserver running with -shards (see internal/shard).
//
// Usage:
//
//	scanshard -dataset orkut-sim -shard 0 -shards 4 -addr :9100
//	scanshard -graph web.bin -shard 1 -shards 4 -addr :9101
//
// Every worker loads the same snapshot (the partition bounds are derived
// deterministically from it); the coordinator cross-checks -shard/-shards
// via heartbeats, so a worker launched with the wrong partition arguments
// is quarantined instead of serving wrong ranges. When the coordinator's
// graph epoch moves ahead (mutations), it pushes a snapshot sync — the
// worker catches up in place and rejoins, never serving a stale view.
//
// Endpoints (coordinator-facing): /shard/step, /shard/healthz,
// /shard/sync, /shard/drain.
//
// -chaos-seed arms the shard fault plan (straggler supersteps, abrupt
// worker death, RPC failures). An injected crash hard-exits the process
// with status 3, the same way an OOM kill or a SIGKILL looks to the
// coordinator; the chaos suites restart the process and assert the fleet
// recovers.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ppscan/graph"
	"ppscan/internal/dataset"
	"ppscan/internal/fault"
	"ppscan/internal/intersect"
	"ppscan/internal/obsv"
	"ppscan/internal/shard"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "graph file to serve (.txt/.bin, optionally .gz)")
		dsName    = flag.String("dataset", "", "named synthetic dataset (alternative to -graph)")
		scale     = flag.Float64("scale", 1.0, "dataset scale factor")
		addr      = flag.String("addr", ":9100", "listen address")
		shardID   = flag.Int("shard", -1, "this worker's shard id in [0, shards)")
		shards    = flag.Int("shards", 0, "total shard count of the fleet")
		workers   = flag.Int("workers", 0, "goroutines for the local similarity pass (0 = GOMAXPROCS)")
		grace     = flag.Duration("shutdown-grace", 15*time.Second, "max time to wait for in-flight rounds on SIGTERM/SIGINT")
		chaosSeed = flag.Int64("chaos-seed", 0, "arm deterministic shard fault injection with this seed (0 = off): straggler supersteps, abrupt crashes (the process hard-exits with status 3), RPC failures")
	)
	flag.Parse()
	if *shards < 1 || *shardID < 0 || *shardID >= *shards {
		fmt.Fprintf(flag.CommandLine.Output(),
			"scanshard: -shard %d -shards %d invalid: need 0 <= shard < shards\n", *shardID, *shards)
		flag.Usage()
		os.Exit(2)
	}
	if *chaosSeed != 0 {
		fault.Enable(fault.NewShardPlan(*chaosSeed))
		log.Printf("shard fault injection armed (seed %d): this worker will misbehave on purpose", *chaosSeed)
	}

	var g *graph.Graph
	var err error
	switch {
	case *graphPath != "":
		g, err = graph.LoadFile(*graphPath)
	case *dsName != "":
		g, err = dataset.Load(*dsName, *scale)
	default:
		err = fmt.Errorf("one of -graph or -dataset is required")
	}
	if err != nil {
		log.Fatal("scanshard: ", err)
	}

	w, err := shard.NewWorker(g, shard.WorkerOptions{
		Shard:    *shardID,
		Shards:   *shards,
		Workers:  *workers,
		Kernel:   intersect.MergeEarly,
		Registry: obsv.Default(),
		// An injected ShardCrash is process death, not an error response:
		// exit abruptly so the coordinator sees a severed connection and
		// exercises its crash-containment path end to end.
		CrashHook: func() {
			log.Printf("injected crash: exiting 3")
			os.Exit(3)
		},
	})
	if err != nil {
		log.Fatal("scanshard: ", err)
	}
	h := w.Health()
	log.Printf("shard %d/%d owns vertices [%d, %d) at epoch %d",
		h.Shard, h.Shards, h.Lo, h.Hi, h.Epoch)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal("scanshard: ", err)
	}
	log.Printf("listening on %s", ln.Addr())

	httpSrv := &http.Server{Handler: w.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		log.Printf("shutdown signal received, draining (grace %v)", *grace)
		w.SetDraining(true)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("shutdown: %v (forcing close)", err)
			httpSrv.Close()
		}
	}()
	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal("scanshard: ", err)
	}
	<-done
	log.Printf("drained, exiting")
}
