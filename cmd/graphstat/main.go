// Command graphstat prints Table 1/2-style statistics (|V|, |E|, average
// and maximum degree) for graph files or the built-in surrogate datasets.
//
// Usage:
//
//	graphstat -table 1            # Table 1 surrogates
//	graphstat -table 2            # Table 2 ROLL family
//	graphstat -graph web.txt
//	graphstat -dataset twitter-sim -scale 0.5 -hist
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"ppscan/graph"
	"ppscan/internal/dataset"
	"ppscan/internal/expharness"
)

func main() {
	var (
		table     = flag.Int("table", 0, "print the paper's Table 1 or 2 over the surrogate datasets")
		graphPath = flag.String("graph", "", "graph file to summarize")
		ds        = flag.String("dataset", "", "named surrogate dataset to summarize")
		scale     = flag.Float64("scale", 1.0, "dataset scale factor")
		hist      = flag.Bool("hist", false, "print the degree histogram (log-binned)")
	)
	flag.Parse()

	cfg := expharness.Config{Scale: *scale}
	switch {
	case *table == 1:
		expharness.PrintStats(cfg, "Table 1: real-world graph statistics (surrogates)", expharness.Table1(cfg))
	case *table == 2:
		expharness.PrintStats(cfg, "Table 2: synthetic ROLL graph statistics", expharness.Table2(cfg))
	case *graphPath != "":
		g, err := graph.LoadFile(*graphPath)
		if err != nil {
			fatal(err)
		}
		describe(*graphPath, g, *hist)
	case *ds != "":
		g, err := dataset.Load(*ds, *scale)
		if err != nil {
			fatal(err)
		}
		describe(*ds, g, *hist)
	default:
		fatal(fmt.Errorf("one of -table, -graph, -dataset is required"))
	}
}

func describe(name string, g *graph.Graph, hist bool) {
	fmt.Println(graph.ComputeStats(name, g))
	_, comps := g.ConnectedComponents()
	fmt.Printf("connected components: %d, sum d^2: %d\n", comps, g.SumDegreeSquares())
	if hist {
		printHistogram(g)
	}
}

func printHistogram(g *graph.Graph) {
	h := g.DegreeHistogram()
	// Log-bin the histogram: [1,2), [2,4), [4,8), ...
	bins := map[int]int64{}
	for d, c := range h {
		b := 0
		for dd := int64(d); dd > 1; dd >>= 1 {
			b++
		}
		bins[b] += c
	}
	keys := make([]int, 0, len(bins))
	for b := range bins {
		keys = append(keys, b)
	}
	sort.Ints(keys)
	fmt.Println("degree histogram (log-binned):")
	for _, b := range keys {
		lo := int64(1) << b
		if b == 0 {
			lo = 0
		}
		fmt.Printf("  d in [%6d, %6d): %d vertices\n", lo, int64(2)<<b, bins[b])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphstat:", err)
	os.Exit(1)
}
