// Command scanserver serves online structural clustering queries over HTTP
// — the interactive-exploration application the paper motivates (§1).
//
// Usage:
//
//	scanserver -dataset orkut-sim -addr :8080
//	scanserver -graph web.bin -index -addr :8080
//
// Endpoints: /healthz, /cluster?eps=&mu=[&algo=&members=true],
// /vertex?v=&eps=&mu=, /quality?eps=&mu=, /metrics. With -pprof, the Go
// profiling endpoints are additionally served under /debug/pprof/.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"ppscan"
	"ppscan/graph"
	"ppscan/internal/dataset"
	"ppscan/internal/server"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "graph file to serve (.txt/.bin, optionally .gz)")
		dsName    = flag.String("dataset", "", "named synthetic dataset (alternative to -graph)")
		scale     = flag.Float64("scale", 1.0, "dataset scale factor")
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "worker goroutines per query (0 = GOMAXPROCS)")
		useIndex  = flag.Bool("index", false, "build a GS*-Index at startup and serve queries from it")
		indexFile = flag.String("indexfile", "", "with -index: load the index from this file if it exists, otherwise build and save it there")
		cacheSize = flag.Int("cache", server.DefaultCacheSize, "response-cache capacity (distinct parameter combinations kept resident)")
		pprofOn   = flag.Bool("pprof", false, "expose the Go profiling endpoints under /debug/pprof/")
		logReqs   = flag.Bool("log-requests", false, "log one structured line per HTTP request")
	)
	flag.Parse()

	var g *graph.Graph
	var err error
	switch {
	case *graphPath != "":
		g, err = graph.LoadFile(*graphPath)
	case *dsName != "":
		g, err = dataset.Load(*dsName, *scale)
	default:
		err = fmt.Errorf("one of -graph or -dataset is required")
	}
	if err != nil {
		log.Fatal("scanserver: ", err)
	}
	log.Printf("serving %s", graph.ComputeStats("graph", g))

	srv := server.New(g, *workers).WithCacheSize(*cacheSize)
	if *logReqs {
		srv = srv.WithLogging(log.Default())
	}
	if *useIndex {
		ix, err := obtainIndex(g, *workers, *indexFile)
		if err != nil {
			log.Fatal("scanserver: ", err)
		}
		srv = srv.WithIndex(ix)
	}
	handler := srv.Handler()
	if *pprofOn {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		log.Printf("pprof enabled at /debug/pprof/")
	}
	log.Printf("listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, handler))
}

// obtainIndex loads a cached index file when present, otherwise builds the
// index (and saves it when a path was given).
func obtainIndex(g *graph.Graph, workers int, path string) (*ppscan.Index, error) {
	if path != "" {
		if f, err := os.Open(path); err == nil {
			defer f.Close()
			ix, err := ppscan.LoadIndex(f, g)
			if err != nil {
				return nil, fmt.Errorf("loading index %s: %w", path, err)
			}
			log.Printf("GS*-Index loaded from %s (%.1f MB)", path, float64(ix.MemoryBytes())/1e6)
			return ix, nil
		}
	}
	t0 := time.Now()
	ix := ppscan.BuildIndex(g, workers)
	log.Printf("GS*-Index built in %v (%.1f MB)", time.Since(t0).Round(time.Millisecond),
		float64(ix.MemoryBytes())/1e6)
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if err := ppscan.SaveIndex(f, ix); err != nil {
			return nil, err
		}
		log.Printf("GS*-Index saved to %s", path)
	}
	return ix, nil
}
