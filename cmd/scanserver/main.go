// Command scanserver serves online structural clustering queries over HTTP
// — the interactive-exploration application the paper motivates (§1).
//
// Usage:
//
//	scanserver -dataset orkut-sim -addr :8080
//	scanserver -graph web.bin -index -addr :8080
//
// Endpoints: /healthz, /cluster?eps=&mu=[&algo=&members=true],
// /cluster/sweep?eps=start:end:step&mu= (one similarity pass, one NDJSON
// line per eps step), POST /edges (with -mutations: batched NDJSON edge
// insertions/deletions committed as a new graph epoch, the GS*-Index
// maintained incrementally), /vertex?v=&eps=&mu=, /quality?eps=&mu=,
// /metrics,
// and /debug/slowest — the tail-latency exemplars: the -exemplars slowest
// computations of the last 15 minutes, each with its per-phase breakdown
// and a Chrome trace of the actual run (load in chrome://tracing or
// ui.perfetto.dev). With -pprof, the Go profiling endpoints are
// additionally served under /debug/pprof/.
//
// -coalesce-window merges concurrent requests with different (eps, mu)
// into a single shared similarity pass whose result fans out to every
// waiter — the throughput lever for parameter-exploration traffic.
//
// -algo selects the default algorithm backend for requests that omit the
// algo query parameter; -list-algos prints the registered backends. Direct
// (non-index) computations draw their scratch memory from a per-server
// workspace pool sized to -max-inflight, so steady-state serving performs
// near-zero allocations per request.
//
// Admission control: -max-inflight bounds concurrent clustering
// computations (excess requests degrade to the cache/index or get 429 +
// Retry-After) and -request-timeout cancels computations that exceed the
// deadline (503 + Retry-After). On SIGTERM/SIGINT the server drains:
// /healthz flips to 503 so load balancers stop routing here, in-flight
// requests finish (up to -shutdown-grace), then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"slices"
	"strings"
	"syscall"
	"time"

	"ppscan"
	"ppscan/graph"
	"ppscan/internal/dataset"
	"ppscan/internal/fault"
	"ppscan/internal/server"
	"ppscan/internal/shard"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "graph file to serve (.txt/.bin, optionally .gz)")
		dsName    = flag.String("dataset", "", "named synthetic dataset (alternative to -graph)")
		scale     = flag.Float64("scale", 1.0, "dataset scale factor")
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "worker goroutines per query (0 = GOMAXPROCS)")
		algoName  = flag.String("algo", "", "default algorithm backend for requests that omit algo= (empty = ppscan); see -list-algos")
		listAlgos = flag.Bool("list-algos", false, "list the registered algorithm backends and exit")
		useIndex  = flag.Bool("index", false, "build a GS*-Index at startup and serve queries from it")
		indexFile = flag.String("indexfile", "", "with -index: load the index from this file if it exists, otherwise build and save it there")
		cacheSize = flag.Int("cache", server.DefaultCacheSize, "response-cache capacity (distinct parameter combinations kept resident)")
		pprofOn   = flag.Bool("pprof", false, "expose the Go profiling endpoints under /debug/pprof/")
		logReqs   = flag.Bool("log-requests", false, "log one structured line per HTTP request")

		mutations   = flag.Bool("mutations", false, "enable POST /edges: batched NDJSON edge mutations commit new graph epochs; with -index the GS*-Index is maintained incrementally across commits")
		coalesceWin = flag.Duration("coalesce-window", 0, "merge concurrent clustering requests into single-flight similarity passes, holding the first request up to this long so others pile on (0 = coalescing off; ignored with -index)")
		sweepSteps  = flag.Int("sweep-max-steps", server.DefaultSweepMaxSteps, "max eps steps one /cluster/sweep request may stream")

		maxInflight = flag.Int("max-inflight", 0, "max concurrent clustering computations (0 = unlimited); excess requests degrade to cache/index or get 429")
		reqTimeout  = flag.Duration("request-timeout", 0, "per-request computation deadline (0 = none); exceeded requests get 503")
		grace       = flag.Duration("shutdown-grace", 15*time.Second, "max time to wait for in-flight requests on SIGTERM/SIGINT")
		watchdog    = flag.Duration("watchdog", 0, "phase stall watchdog for direct computations: abort a request whose run makes no scheduler progress for this long and answer 500 (0 = off)")
		exemplars   = flag.Int("exemplars", 8, "retain the N slowest computations of the last 15 minutes with full execution traces at /debug/slowest (0 = parameters and phase breakdown only for the default 4, traces off)")
		chaosSeed   = flag.Int64("chaos-seed", 0, "arm deterministic fault injection with this seed (0 = off) — a chaos drill: injected worker panics, delays and transient faults exercise the containment paths while /metrics reports fault.* counters")

		shardSpec = flag.String("shards", "", "serve queries on a multi-process scanshard worker fleet instead of in-process engines: semicolon-separated shards, each a comma-separated list of replica base URLs, e.g. \"http://h1:9100,http://h2:9100;http://h1:9101,http://h2:9101\"; mutually exclusive with -index and -coalesce-window")
	)
	flag.Parse()
	var shardFleet [][]string
	if *shardSpec != "" {
		var perr error
		shardFleet, perr = parseShardSpec(*shardSpec)
		if perr == nil && *useIndex {
			perr = fmt.Errorf("-shards is mutually exclusive with -index")
		}
		if perr == nil && *coalesceWin > 0 {
			perr = fmt.Errorf("-shards is mutually exclusive with -coalesce-window")
		}
		if perr != nil {
			fmt.Fprintf(flag.CommandLine.Output(), "scanserver: bad -shards: %v\n", perr)
			flag.Usage()
			os.Exit(2)
		}
	}
	if *chaosSeed != 0 {
		fault.Enable(fault.NewPlan(*chaosSeed))
		log.Printf("fault injection armed (seed %d): this server will misbehave on purpose", *chaosSeed)
	}

	if *listAlgos {
		for _, name := range ppscan.EngineNames() {
			fmt.Println(name)
		}
		return
	}
	if *algoName != "" {
		names := ppscan.EngineNames()
		if !slices.Contains(names, *algoName) {
			log.Fatalf("scanserver: unknown -algo %q (registered: %s)", *algoName, strings.Join(names, ", "))
		}
	}

	var g *graph.Graph
	var err error
	switch {
	case *graphPath != "":
		g, err = graph.LoadFile(*graphPath)
	case *dsName != "":
		g, err = dataset.Load(*dsName, *scale)
	default:
		err = fmt.Errorf("one of -graph or -dataset is required")
	}
	if err != nil {
		log.Fatal("scanserver: ", err)
	}
	log.Printf("serving %s", graph.ComputeStats("graph", g))

	srv := server.New(g, *workers).
		WithCacheSize(*cacheSize).
		WithAdmission(*maxInflight, *reqTimeout).
		WithWatchdog(*watchdog).
		WithSweepMaxSteps(*sweepSteps).
		WithAlgorithm(ppscan.Algorithm(*algoName))
	if *coalesceWin > 0 {
		if *useIndex {
			log.Printf("-coalesce-window ignored: the GS*-Index already shares similarities across requests")
		} else {
			srv = srv.WithCoalescing(*coalesceWin)
			log.Printf("request coalescing: concurrent (eps, mu) requests share one similarity pass (window %v)", *coalesceWin)
		}
	}
	if *exemplars > 0 {
		// Arm trace capture: every retained slow request carries its Chrome
		// trace. WithExemplars after WithAdmission so the tracer pool sizes
		// itself to the in-flight bound.
		srv = srv.WithExemplars(*exemplars, server.DefaultExemplarWindow, true)
		log.Printf("tail-latency exemplars: %d slowest requests with traces at /debug/slowest", *exemplars)
	}
	if *logReqs {
		srv = srv.WithLogging(log.Default())
	}
	if *useIndex {
		ix, err := obtainIndex(g, *workers, *indexFile)
		if err != nil {
			log.Fatal("scanserver: ", err)
		}
		srv = srv.WithIndex(ix)
	}
	if *mutations {
		// After WithIndex: the mutation path then maintains the index
		// incrementally instead of serving an index-less epoch 1.
		srv = srv.WithMutations()
		log.Printf("mutations enabled: POST /edges commits batched edge churn into new epochs")
	}
	var coord *shard.Coordinator
	if shardFleet != nil {
		coord, err = shard.NewCoordinator(g, shard.Options{
			Shards: shardFleet,
			Logf:   log.Printf,
		})
		if err != nil {
			log.Fatal("scanserver: ", err)
		}
		srv = srv.WithShards(coord)
		replicas := 0
		for _, reps := range shardFleet {
			replicas += len(reps)
		}
		log.Printf("sharded serving: %d shards, %d replicas; queries run on the scanshard fleet", len(shardFleet), replicas)
	}
	handler := srv.Handler()
	if *pprofOn {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		log.Printf("pprof enabled at /debug/pprof/")
	}
	if *maxInflight > 0 || *reqTimeout > 0 {
		log.Printf("admission control: max-inflight=%d request-timeout=%v", *maxInflight, *reqTimeout)
	}

	// Listen explicitly so the resolved address (e.g. with -addr :0 in
	// tests) can be logged before serving.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal("scanserver: ", err)
	}
	log.Printf("listening on %s", ln.Addr())

	httpSrv := &http.Server{Handler: handler}
	// Drain on SIGTERM/SIGINT: flip /healthz to 503, stop accepting
	// connections, and give in-flight requests -shutdown-grace to finish.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		log.Printf("shutdown signal received, draining (grace %v)", *grace)
		srv.SetDraining(true)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("shutdown: %v (forcing close)", err)
			httpSrv.Close()
		}
		if coord != nil {
			// After in-flight requests finished their supersteps: stop the
			// heartbeat loop and notify workers to drain, so the fleet
			// refuses rounds from a coordinator that is going away.
			coord.Shutdown(shutdownCtx)
			log.Printf("shard fleet notified to drain")
		}
	}()
	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal("scanserver: ", err)
	}
	<-done
	log.Printf("drained, exiting")
}

// parseShardSpec parses the -shards fleet spec: semicolon-separated
// shards, each a comma-separated list of replica base URLs.
func parseShardSpec(spec string) ([][]string, error) {
	var fleet [][]string
	for i, shardPart := range strings.Split(spec, ";") {
		var replicas []string
		for _, addr := range strings.Split(shardPart, ",") {
			addr = strings.TrimSpace(addr)
			if addr == "" {
				continue
			}
			if !strings.HasPrefix(addr, "http://") && !strings.HasPrefix(addr, "https://") {
				return nil, fmt.Errorf("shard %d: replica %q is not an http(s) base URL", i, addr)
			}
			replicas = append(replicas, strings.TrimRight(addr, "/"))
		}
		if len(replicas) == 0 {
			return nil, fmt.Errorf("shard %d has no replicas", i)
		}
		fleet = append(fleet, replicas)
	}
	if len(fleet) == 0 {
		return nil, fmt.Errorf("empty fleet spec")
	}
	return fleet, nil
}

// obtainIndex loads a cached index file when present, otherwise builds the
// index (and saves it when a path was given).
func obtainIndex(g *graph.Graph, workers int, path string) (*ppscan.Index, error) {
	if path != "" {
		if f, err := os.Open(path); err == nil {
			defer f.Close()
			ix, err := ppscan.LoadIndex(f, g)
			if err != nil {
				return nil, fmt.Errorf("loading index %s: %w", path, err)
			}
			log.Printf("GS*-Index loaded from %s (%.1f MB)", path, float64(ix.MemoryBytes())/1e6)
			return ix, nil
		}
	}
	t0 := time.Now()
	ix := ppscan.BuildIndex(g, workers)
	log.Printf("GS*-Index built in %v (%.1f MB)", time.Since(t0).Round(time.Millisecond),
		float64(ix.MemoryBytes())/1e6)
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if err := ppscan.SaveIndex(f, ix); err != nil {
			return nil, err
		}
		log.Printf("GS*-Index saved to %s", path)
	}
	return ix, nil
}
