package main

import (
	"reflect"
	"testing"
)

const sampleHelp = `Usage of scanserver:
  -addr string
    	listen address (default ":8080")
  -cache int
    	response-cache capacity (default 64)
  -coalesce-window duration
    	merge concurrent clustering requests (0 = off)
  -index
    	build a GS*-Index at startup
  -log-requests
    	log one structured line per HTTP request
`

func TestParseHelpFlags(t *testing.T) {
	got := parseHelpFlags(sampleHelp)
	want := []string{"addr", "cache", "coalesce-window", "index", "log-requests"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestCheckFlags(t *testing.T) {
	doc := "| `-addr host:port` | ... |\n| `-cache n` | ... |\n| `-index` | ... |\n" +
		"| `-coalesce-window d` | ... |\n"
	missing := checkFlags(doc, []string{"addr", "cache", "coalesce-window", "index", "log-requests"})
	if !reflect.DeepEqual(missing, []string{"log-requests"}) {
		t.Fatalf("missing = %v, want [log-requests]", missing)
	}
	// A bare substring must not satisfy the check: "-cache" inside prose
	// without backticks is not a documented flag entry.
	missing = checkFlags("use -cache to size it", []string{"cache"})
	if len(missing) != 1 {
		t.Fatalf("unbackticked mention accepted: missing = %v", missing)
	}
}

func TestCheckRoutes(t *testing.T) {
	doc := "### `GET /cluster`\n### `GET /cluster/sweep`\n`GET /healthz`\n"
	missing := checkRoutes(doc, []string{"/healthz", "/cluster", "/cluster/sweep", "/metrics"})
	if !reflect.DeepEqual(missing, []string{"/metrics"}) {
		t.Fatalf("missing = %v, want [/metrics]", missing)
	}
}

const sampleTable = "| analyzer | suppression | pins |\n" +
	"|---|---|---|\n" +
	"| `hotalloc` | `//lint:allowalloc` | serving allocation budget |\n" +
	"| `ctxloop` | `//lint:ctxok` | cancellation checkpoints |\n" +
	"| `snapfreeze` | `//lint:snapfreeze` | frozen snapshot arrays |\n" +
	"| `retired` | `//lint:retired` | an analyzer that no longer exists |\n" +
	"| `chanwait` | `//lint:wrongname` | bounded blocking waits |\n"

func TestCheckAnalyzerTable(t *testing.T) {
	analyzers := map[string]string{
		"hotalloc":   "allowalloc",
		"ctxloop":    "ctxok",
		"snapfreeze": "snapfreeze",
		"chanwait":   "chanwait",
		"lockorder":  "lockorder",
	}
	drift := checkAnalyzerTable(sampleTable, analyzers)
	want := []string{
		`analyzer chanwait row documents directive "wrongname", code says "chanwait"`,
		"analyzer lockorder has no table row",
		"table row retired names no registered analyzer",
	}
	if !reflect.DeepEqual(drift, want) {
		t.Fatalf("drift = %q, want %q", drift, want)
	}
	// Other markdown tables (flag tables, gate tables) must not parse as
	// analyzer rows: cells lacking the backtick-name + backtick-directive
	// shape are ignored.
	if d := checkAnalyzerTable("| `-addr host:port` | listen address |\n"+sampleTable, analyzers); !reflect.DeepEqual(d, drift) {
		t.Fatalf("flag-table row changed the diff: %q", d)
	}
	// A clean table diffs clean.
	clean := "| `hotalloc` | `//lint:allowalloc` | x |\n| `ctxloop` | `//lint:ctxok` | x |\n"
	if d := checkAnalyzerTable(clean, map[string]string{"hotalloc": "allowalloc", "ctxloop": "ctxok"}); d != nil {
		t.Fatalf("clean table produced drift: %q", d)
	}
}
