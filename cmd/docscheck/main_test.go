package main

import (
	"reflect"
	"testing"
)

const sampleHelp = `Usage of scanserver:
  -addr string
    	listen address (default ":8080")
  -cache int
    	response-cache capacity (default 64)
  -coalesce-window duration
    	merge concurrent clustering requests (0 = off)
  -index
    	build a GS*-Index at startup
  -log-requests
    	log one structured line per HTTP request
`

func TestParseHelpFlags(t *testing.T) {
	got := parseHelpFlags(sampleHelp)
	want := []string{"addr", "cache", "coalesce-window", "index", "log-requests"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestCheckFlags(t *testing.T) {
	doc := "| `-addr host:port` | ... |\n| `-cache n` | ... |\n| `-index` | ... |\n" +
		"| `-coalesce-window d` | ... |\n"
	missing := checkFlags(doc, []string{"addr", "cache", "coalesce-window", "index", "log-requests"})
	if !reflect.DeepEqual(missing, []string{"log-requests"}) {
		t.Fatalf("missing = %v, want [log-requests]", missing)
	}
	// A bare substring must not satisfy the check: "-cache" inside prose
	// without backticks is not a documented flag entry.
	missing = checkFlags("use -cache to size it", []string{"cache"})
	if len(missing) != 1 {
		t.Fatalf("unbackticked mention accepted: missing = %v", missing)
	}
}

func TestCheckRoutes(t *testing.T) {
	doc := "### `GET /cluster`\n### `GET /cluster/sweep`\n`GET /healthz`\n"
	missing := checkRoutes(doc, []string{"/healthz", "/cluster", "/cluster/sweep", "/metrics"})
	if !reflect.DeepEqual(missing, []string{"/metrics"}) {
		t.Fatalf("missing = %v, want [/metrics]", missing)
	}
}
