// Command docscheck keeps the operator documentation honest: it diffs
// each CLI binary's actual -help output against OPERATIONS.md and the
// server's registered HTTP routes against the README API reference, and
// fails when either document has drifted behind the code.
//
// Usage (normally via `make docs-check`):
//
//	docscheck -ops OPERATIONS.md -readme README.md \
//	    bin/scanserver bin/ppscan bin/perfbench
//
// Each positional argument is a built binary; docscheck runs it with -h,
// extracts every registered flag name from the usage listing, and
// requires a backticked `-flag` mention in OPERATIONS.md. Every path from
// server.Routes() must appear in README.md. Exit status: 0 = docs match,
// 1 = drift (each missing item is listed), 2 = usage or I/O error.
package main

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"

	"ppscan/internal/server"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout))
}

func realMain(args []string, w io.Writer) int {
	opsPath, readmePath := "OPERATIONS.md", "README.md"
	var bins []string
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-ops":
			i++
			if i >= len(args) {
				fmt.Fprintln(w, "docscheck: -ops needs a path")
				return 2
			}
			opsPath = args[i]
		case "-readme":
			i++
			if i >= len(args) {
				fmt.Fprintln(w, "docscheck: -readme needs a path")
				return 2
			}
			readmePath = args[i]
		default:
			bins = append(bins, args[i])
		}
	}

	ops, err := os.ReadFile(opsPath)
	if err != nil {
		fmt.Fprintf(w, "docscheck: %v\n", err)
		return 2
	}
	readme, err := os.ReadFile(readmePath)
	if err != nil {
		fmt.Fprintf(w, "docscheck: %v\n", err)
		return 2
	}

	drift := 0
	for _, bin := range bins {
		help, err := helpOutput(bin)
		if err != nil {
			fmt.Fprintf(w, "docscheck: %s: %v\n", bin, err)
			return 2
		}
		name := filepath.Base(bin)
		for _, missing := range checkFlags(string(ops), parseHelpFlags(help)) {
			fmt.Fprintf(w, "docscheck: %s flag -%s is not documented in %s\n", name, missing, opsPath)
			drift++
		}
	}
	for _, missing := range checkRoutes(string(readme), server.Routes()) {
		fmt.Fprintf(w, "docscheck: route %s is not documented in %s\n", missing, readmePath)
		drift++
	}
	if drift > 0 {
		fmt.Fprintf(w, "docscheck: %d undocumented item(s) — update the docs or the code\n", drift)
		return 1
	}
	fmt.Fprintf(w, "docscheck: %d binarie(s) and %d routes match the docs\n", len(bins), len(server.Routes()))
	return 0
}

// helpOutput runs bin -h and returns the combined usage text. The flag
// package exits 2 after printing usage, so a non-zero status with output
// is the expected success shape.
func helpOutput(bin string) (string, error) {
	out, err := exec.Command(bin, "-h").CombinedOutput()
	if len(out) == 0 && err != nil {
		return "", fmt.Errorf("no usage output: %w", err)
	}
	return string(out), nil
}

// helpFlagRe matches the flag-definition lines the flag package prints:
// two spaces, a dash, the name ("  -addr string", "  -index").
var helpFlagRe = regexp.MustCompile(`(?m)^\s\s-([A-Za-z0-9][-A-Za-z0-9]*)\b`)

// parseHelpFlags extracts the registered flag names from -h output.
func parseHelpFlags(help string) []string {
	var names []string
	seen := map[string]bool{}
	for _, m := range helpFlagRe.FindAllStringSubmatch(help, -1) {
		if !seen[m[1]] {
			seen[m[1]] = true
			names = append(names, m[1])
		}
	}
	return names
}

// checkFlags returns the flags with no backticked `-flag` mention in the
// document — the form every OPERATIONS.md flag table uses.
func checkFlags(doc string, flags []string) []string {
	var missing []string
	for _, f := range flags {
		// `-flag` alone or `-flag value` / `-flag=value` inside the ticks.
		re := regexp.MustCompile("`-" + regexp.QuoteMeta(f) + "[` =]")
		if !re.MatchString(doc) {
			missing = append(missing, f)
		}
	}
	return missing
}

// checkRoutes returns the registered HTTP paths the document never
// mentions.
func checkRoutes(doc string, routes []string) []string {
	var missing []string
	for _, r := range routes {
		if !strings.Contains(doc, r) {
			missing = append(missing, r)
		}
	}
	return missing
}
