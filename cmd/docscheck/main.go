// Command docscheck keeps the operator documentation honest: it diffs
// each CLI binary's actual -help output against OPERATIONS.md and the
// server's registered HTTP routes against the README API reference, and
// fails when either document has drifted behind the code.
//
// Usage (normally via `make docs-check`):
//
//	docscheck -ops OPERATIONS.md -readme README.md \
//	    bin/scanserver bin/scanshard bin/ppscan bin/perfbench
//
// Each positional argument is a built binary; docscheck runs it with -h,
// extracts every registered flag name from the usage listing, and
// requires a backticked `-flag` mention in OPERATIONS.md. Every path from
// server.Routes() must appear in README.md. With -scanlint PATH, the
// OPERATIONS.md §9 analyzer table is additionally diffed against that
// binary's -list output: every analyzer needs a table row, every row must
// name a live analyzer, and each row's suppression directive must match
// the code. Exit status: 0 = docs match, 1 = drift (each missing item is
// listed), 2 = usage or I/O error.
package main

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"ppscan/internal/server"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout))
}

func realMain(args []string, w io.Writer) int {
	opsPath, readmePath, scanlintBin := "OPERATIONS.md", "README.md", ""
	var bins []string
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-ops":
			i++
			if i >= len(args) {
				fmt.Fprintln(w, "docscheck: -ops needs a path")
				return 2
			}
			opsPath = args[i]
		case "-readme":
			i++
			if i >= len(args) {
				fmt.Fprintln(w, "docscheck: -readme needs a path")
				return 2
			}
			readmePath = args[i]
		case "-scanlint":
			i++
			if i >= len(args) {
				fmt.Fprintln(w, "docscheck: -scanlint needs a binary path")
				return 2
			}
			scanlintBin = args[i]
		default:
			bins = append(bins, args[i])
		}
	}

	ops, err := os.ReadFile(opsPath)
	if err != nil {
		fmt.Fprintf(w, "docscheck: %v\n", err)
		return 2
	}
	readme, err := os.ReadFile(readmePath)
	if err != nil {
		fmt.Fprintf(w, "docscheck: %v\n", err)
		return 2
	}

	drift := 0
	for _, bin := range bins {
		help, err := helpOutput(bin)
		if err != nil {
			fmt.Fprintf(w, "docscheck: %s: %v\n", bin, err)
			return 2
		}
		name := filepath.Base(bin)
		for _, missing := range checkFlags(string(ops), parseHelpFlags(help)) {
			fmt.Fprintf(w, "docscheck: %s flag -%s is not documented in %s\n", name, missing, opsPath)
			drift++
		}
	}
	for _, missing := range checkRoutes(string(readme), server.Routes()) {
		fmt.Fprintf(w, "docscheck: route %s is not documented in %s\n", missing, readmePath)
		drift++
	}
	if scanlintBin != "" {
		analyzers, err := scanlintList(scanlintBin)
		if err != nil {
			fmt.Fprintf(w, "docscheck: %s: %v\n", scanlintBin, err)
			return 2
		}
		for _, d := range checkAnalyzerTable(string(ops), analyzers) {
			fmt.Fprintf(w, "docscheck: %s (in %s §9 analyzer table)\n", d, opsPath)
			drift++
		}
	}
	if drift > 0 {
		fmt.Fprintf(w, "docscheck: %d undocumented item(s) — update the docs or the code\n", drift)
		return 1
	}
	fmt.Fprintf(w, "docscheck: %d binarie(s) and %d routes match the docs\n", len(bins), len(server.Routes()))
	return 0
}

// scanlintList runs bin -list and returns analyzer name → suppression
// directive ("" when not suppressible). The -list format is two lines per
// analyzer: "name  doc" flush left, then an indented "[suppress with
// //lint:dir <reason>]" or "[not suppressible]" bracket line.
func scanlintList(bin string) (map[string]string, error) {
	out, err := exec.Command(bin, "-list").CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("running -list: %w\n%s", err, out)
	}
	analyzers := map[string]string{}
	var last string
	for _, line := range strings.Split(string(out), "\n") {
		if line == "" {
			continue
		}
		if !strings.HasPrefix(line, " ") {
			last = strings.Fields(line)[0]
			analyzers[last] = ""
			continue
		}
		if m := listDirectiveRe.FindStringSubmatch(line); m != nil && last != "" {
			analyzers[last] = m[1]
		}
	}
	if len(analyzers) == 0 {
		return nil, fmt.Errorf("-list output had no analyzers:\n%s", out)
	}
	return analyzers, nil
}

var listDirectiveRe = regexp.MustCompile(`\[suppress with //lint:([A-Za-z0-9]+) <reason>\]`)

// analyzerRowRe matches the OPERATIONS.md §9 table rows: first cell a
// backticked analyzer name, second cell its backticked //lint: directive
// (or "—" for not-suppressible). Requiring both cell shapes keeps other
// tables in the document from parsing as analyzer rows.
var analyzerRowRe = regexp.MustCompile("(?m)^\\|\\s*`([A-Za-z0-9]+)`\\s*\\|\\s*(?:`//lint:([A-Za-z0-9]+)`|—)\\s*\\|")

// checkAnalyzerTable diffs the documented analyzer table against the
// analyzers registered in the scanlint binary, in both directions, plus
// the per-row suppression directive.
func checkAnalyzerTable(doc string, analyzers map[string]string) []string {
	var drift []string
	rows := map[string]string{}
	for _, m := range analyzerRowRe.FindAllStringSubmatch(doc, -1) {
		rows[m[1]] = m[2]
	}
	names := make([]string, 0, len(analyzers))
	for name := range analyzers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		dir, ok := rows[name]
		if !ok {
			drift = append(drift, fmt.Sprintf("analyzer %s has no table row", name))
			continue
		}
		if dir != analyzers[name] {
			drift = append(drift, fmt.Sprintf("analyzer %s row documents directive %q, code says %q",
				name, dir, analyzers[name]))
		}
	}
	rowNames := make([]string, 0, len(rows))
	for name := range rows {
		rowNames = append(rowNames, name)
	}
	sort.Strings(rowNames)
	for _, name := range rowNames {
		if _, ok := analyzers[name]; !ok {
			drift = append(drift, fmt.Sprintf("table row %s names no registered analyzer", name))
		}
	}
	return drift
}

// helpOutput runs bin -h and returns the combined usage text. The flag
// package exits 2 after printing usage, so a non-zero status with output
// is the expected success shape.
func helpOutput(bin string) (string, error) {
	out, err := exec.Command(bin, "-h").CombinedOutput()
	if len(out) == 0 && err != nil {
		return "", fmt.Errorf("no usage output: %w", err)
	}
	return string(out), nil
}

// helpFlagRe matches the flag-definition lines the flag package prints:
// two spaces, a dash, the name ("  -addr string", "  -index").
var helpFlagRe = regexp.MustCompile(`(?m)^\s\s-([A-Za-z0-9][-A-Za-z0-9]*)\b`)

// parseHelpFlags extracts the registered flag names from -h output.
func parseHelpFlags(help string) []string {
	var names []string
	seen := map[string]bool{}
	for _, m := range helpFlagRe.FindAllStringSubmatch(help, -1) {
		if !seen[m[1]] {
			seen[m[1]] = true
			names = append(names, m[1])
		}
	}
	return names
}

// checkFlags returns the flags with no backticked `-flag` mention in the
// document — the form every OPERATIONS.md flag table uses.
func checkFlags(doc string, flags []string) []string {
	var missing []string
	for _, f := range flags {
		// `-flag` alone or `-flag value` / `-flag=value` inside the ticks.
		re := regexp.MustCompile("`-" + regexp.QuoteMeta(f) + "[` =]")
		if !re.MatchString(doc) {
			missing = append(missing, f)
		}
	}
	return missing
}

// checkRoutes returns the registered HTTP paths the document never
// mentions.
func checkRoutes(doc string, routes []string) []string {
	var missing []string
	for _, r := range routes {
		if !strings.Contains(doc, r) {
			missing = append(missing, r)
		}
	}
	return missing
}
