// Command experiments regenerates the paper's evaluation tables and
// figures (§6) as text series on the surrogate datasets.
//
// Usage:
//
//	experiments -list
//	experiments -run fig4
//	experiments -run all -scale 0.5 -repeats 3
//	experiments -run fig6 -workers 8
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"ppscan/internal/expharness"
	"ppscan/internal/obsv"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available experiments")
		run     = flag.String("run", "", "experiment id to run, or \"all\"")
		scale   = flag.Float64("scale", 1.0, "dataset scale factor")
		workers = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		repeats = flag.Int("repeats", 1, "repetitions per measurement (best time reported, as in the paper)")
		quick   = flag.Bool("quick", false, "reduced parameter grids (smoke test)")
		csvDir  = flag.String("csv", "", "also write machine-readable <id>.csv files into this directory")
		charts  = flag.Bool("charts", false, "render terminal bar charts for figure experiments")
		metrics = flag.Bool("metrics", false, "after the runs, print the accumulated metrics-registry snapshot as JSON")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, e := range expharness.Experiments() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Description)
		}
		if *run == "" && !*list {
			fmt.Println("\nuse -run <id> or -run all")
		}
		return
	}

	cfg := expharness.Config{
		Scale:   *scale,
		Workers: *workers,
		Repeats: *repeats,
		Quick:   *quick,
		Charts:  *charts,
		Out:     os.Stdout,
	}

	if *run == "all" {
		for _, e := range expharness.Experiments() {
			runOne(e, cfg, *csvDir)
		}
		dumpMetrics(*metrics)
		return
	}
	e, err := expharness.Lookup(*run)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	runOne(e, cfg, *csvDir)
	dumpMetrics(*metrics)
}

// dumpMetrics prints the process-global registry (phase, kernel and
// scheduler totals accumulated across every run performed) as JSON.
func dumpMetrics(enabled bool) {
	if !enabled {
		return
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(obsv.Default().Snapshot()); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func runOne(e expharness.Experiment, cfg expharness.Config, csvDir string) {
	t0 := time.Now()
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		path := filepath.Join(csvDir, e.ID+".csv")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if err := expharness.RunCSV(e.ID, cfg, f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("-- %s CSV written to %s in %v --\n\n", e.ID, path, time.Since(t0).Round(time.Millisecond))
		return
	}
	e.Run(cfg)
	fmt.Printf("-- %s completed in %v --\n\n", e.ID, time.Since(t0).Round(time.Millisecond))
}
