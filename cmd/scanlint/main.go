// Command scanlint runs the project's custom analyzers (internal/lint) over
// Go packages, multichecker-style. It is built from source by `make
// scanlint` — no network, no external dependencies — and is part of `make
// check` and CI.
//
// Usage:
//
//	scanlint [flags] [packages]
//
// Packages default to ./... . Exit status is 0 when clean, 1 when findings
// were reported, 2 on a load or usage error.
//
// Flags:
//
//	-json            emit findings as a JSON array (for tooling; see
//	                 `make lint-fix-list`)
//	-list            list analyzers and exit
//	-enable  a,b     run only the named analyzers
//	-disable a,b     run all but the named analyzers
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"ppscan/internal/lint"
	"ppscan/internal/lint/framework"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("scanlint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	list := fs.Bool("list", false, "list analyzers and exit")
	enable := fs.String("enable", "", "comma-separated analyzers to run (default: all)")
	disable := fs.String("disable", "", "comma-separated analyzers to skip")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers, err := selectAnalyzers(lint.All(), *enable, *disable)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scanlint:", err)
		return 2
	}
	if *list {
		for _, a := range analyzers {
			suppress := "not suppressible"
			if a.Directive != "" {
				suppress = "suppress with //lint:" + a.Directive + " <reason>"
			}
			fmt.Printf("%-12s %s\n%14s[%s]\n", a.Name, a.Doc, "", suppress)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "scanlint:", err)
		return 2
	}
	pkgs, err := framework.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scanlint:", err)
		return 2
	}

	var all []framework.Diagnostic
	for _, pkg := range pkgs {
		diags, err := framework.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scanlint:", err)
			return 2
		}
		all = append(all, diags...)
	}

	if *jsonOut {
		if all == nil {
			all = []framework.Diagnostic{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(all); err != nil {
			fmt.Fprintln(os.Stderr, "scanlint:", err)
			return 2
		}
	} else {
		for _, d := range all {
			fmt.Println(d)
		}
	}
	if len(all) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "scanlint: %d finding(s)\n", len(all))
		}
		return 1
	}
	return 0
}

func selectAnalyzers(all []*framework.Analyzer, enable, disable string) ([]*framework.Analyzer, error) {
	if enable != "" && disable != "" {
		return nil, fmt.Errorf("-enable and -disable are mutually exclusive")
	}
	byName := map[string]*framework.Analyzer{}
	valid := make([]string, 0, len(all))
	for _, a := range all {
		byName[a.Name] = a
		valid = append(valid, a.Name)
	}
	split := func(s string) ([]string, error) {
		var names []string
		for _, n := range strings.Split(s, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if byName[n] == nil {
				return nil, fmt.Errorf("unknown analyzer %q; valid analyzers: %s", n, strings.Join(valid, ", "))
			}
			names = append(names, n)
		}
		return names, nil
	}
	switch {
	case enable != "":
		names, err := split(enable)
		if err != nil {
			return nil, err
		}
		var out []*framework.Analyzer
		for _, n := range names {
			out = append(out, byName[n])
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("-enable selected no analyzers")
		}
		return out, nil
	case disable != "":
		names, err := split(disable)
		if err != nil {
			return nil, err
		}
		skip := map[string]bool{}
		for _, n := range names {
			skip[n] = true
		}
		var out []*framework.Analyzer
		for _, a := range all {
			if !skip[a.Name] {
				out = append(out, a)
			}
		}
		return out, nil
	default:
		return all, nil
	}
}
