package main

import (
	"testing"

	"ppscan/internal/lint"
	"ppscan/internal/lint/framework"
)

func TestSelectAnalyzers(t *testing.T) {
	all := lint.All()

	got, err := selectAnalyzers(all, "", "")
	if err != nil || len(got) != len(all) {
		t.Fatalf("default selection = %d analyzers, err %v; want all %d", len(got), err, len(all))
	}

	got, err = selectAnalyzers(all, "hotalloc,ctxloop", "")
	if err != nil || len(got) != 2 || got[0].Name != "hotalloc" || got[1].Name != "ctxloop" {
		t.Fatalf("-enable hotalloc,ctxloop = %v, err %v", names(got), err)
	}

	got, err = selectAnalyzers(all, "", "wsalias")
	if err != nil || len(got) != len(all)-1 {
		t.Fatalf("-disable wsalias = %v, err %v", names(got), err)
	}
	for _, a := range got {
		if a.Name == "wsalias" {
			t.Fatal("-disable wsalias still selected wsalias")
		}
	}

	if _, err = selectAnalyzers(all, "nope", ""); err == nil {
		t.Fatal("unknown analyzer in -enable not rejected")
	}
	if _, err = selectAnalyzers(all, "hotalloc", "ctxloop"); err == nil {
		t.Fatal("-enable with -disable not rejected")
	}
}

func TestListExitsClean(t *testing.T) {
	if code := run([]string{"-list"}); code != 0 {
		t.Fatalf("scanlint -list exit = %d, want 0", code)
	}
}

func names(as []*framework.Analyzer) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Name
	}
	return out
}
