// Command perfbench measures the canonical performance suite and gates it
// against the recorded trajectory (internal/perfgate): per-engine warm and
// cold latency, warm-path allocations, per-phase P1–P7 durations,
// intersection-kernel throughput, and end-to-end server request latency —
// all on deterministic synthetic graphs, all medians-of-N.
//
// Each run emits a schema-versioned BENCH_<stamp>.json into -dir and
// compares itself against the newest baseline from the same host
// fingerprint. Within tolerance (or improved): the new report joins the
// trajectory and the exit status is 0. Regressed: a per-metric report goes
// to stdout, the exit status is 1, and the regressed report is NOT
// written, so a bad commit cannot quietly become the next baseline
// (override with -force-write after an intentional trade-off).
//
// `make perf` runs the suite locally; CI runs it with -tolerance-scale 2
// (shared runners are noisy) and uploads the report and the slowest run's
// trace (-trace-out) as artifacts. See OPERATIONS.md §11 for triage.
//
//	perfbench -quick -runs 3          # fast smoke (small graph)
//	perfbench -baseline BENCH_x.json  # compare against a specific point
//	perfbench -inject-delay 200us     # self-test: must exit 1
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"testing"
	"text/tabwriter"
	"time"

	"ppscan"
	"ppscan/graph"
	"ppscan/internal/fault"
	"ppscan/internal/gen"
	"ppscan/internal/intersect"
	"ppscan/internal/obsv"
	"ppscan/internal/perfgate"
	"ppscan/internal/server"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout))
}

// config carries the parsed suite parameters.
type config struct {
	dir         string
	runs        int
	quick       bool
	scale       float64
	baseline    string
	anyHost     bool
	noWrite     bool
	forceWrite  bool
	injectDelay time.Duration
	traceOut    string
	engines     []string
	eps         string
	mu          int
}

// realMain is the testable entry point: exit 0 = within tolerance,
// 1 = regression (or vanished metric), 2 = usage or I/O error.
func realMain(args []string, w io.Writer) int {
	fs := flag.NewFlagSet("perfbench", flag.ContinueOnError)
	fs.SetOutput(w)
	var cfg config
	fs.StringVar(&cfg.dir, "dir", ".", "trajectory directory holding BENCH_*.json reports")
	fs.IntVar(&cfg.runs, "runs", 5, "measurements per metric (the gate compares medians)")
	fs.BoolVar(&cfg.quick, "quick", false, "small graph and fewer kernel iterations (CI smoke)")
	fs.Float64Var(&cfg.scale, "tolerance-scale", 1.0, "multiply every tolerance band (CI uses 2 for noisy shared runners)")
	fs.StringVar(&cfg.baseline, "baseline", "", "compare against this report file instead of the newest same-host one")
	fs.BoolVar(&cfg.anyHost, "any-host", false, "accept a baseline from a different host fingerprint")
	fs.BoolVar(&cfg.noWrite, "no-write", false, "measure and compare only; never write a report")
	fs.BoolVar(&cfg.forceWrite, "force-write", false, "write the report even on regression (intentional baseline reset)")
	fs.DurationVar(&cfg.injectDelay, "inject-delay", 0, "arm a deterministic per-task fault delay (self-test: the gate must fail)")
	fs.StringVar(&cfg.traceOut, "trace-out", "", "write the slowest ppscan run's Chrome trace to this file")
	enginesFlag := fs.String("engines", "", "comma-separated engine subset (default: all registered)")
	fs.StringVar(&cfg.eps, "eps", "0.5", "similarity threshold for the suite")
	fs.IntVar(&cfg.mu, "mu", 4, "core threshold for the suite")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if cfg.runs < 1 {
		cfg.runs = 1
	}
	if *enginesFlag != "" {
		cfg.engines = strings.Split(*enginesFlag, ",")
	} else {
		cfg.engines = ppscan.EngineNames()
	}

	if cfg.injectDelay > 0 {
		// A deterministic straggler on every scheduler task: the chaos
		// handle the acceptance test uses to prove the gate actually trips.
		fault.Enable(&fault.Plan{Rules: []fault.Rule{{
			Point: fault.WorkerTask, Action: fault.ActDelay,
			Start: 1, Every: 1, Delay: cfg.injectDelay,
		}}})
		defer fault.Disable()
		fmt.Fprintf(w, "fault injection armed: +%v per scheduler task\n", cfg.injectDelay)
	}

	cur, slowTrace, err := runSuite(cfg, w)
	if err != nil {
		fmt.Fprintf(w, "perfbench: %v\n", err)
		return 2
	}
	if cfg.traceOut != "" && slowTrace != nil {
		if err := writeTrace(cfg.traceOut, slowTrace); err != nil {
			fmt.Fprintf(w, "perfbench: writing trace: %v\n", err)
			return 2
		}
		fmt.Fprintf(w, "slowest ppscan run trace: %s (%d events)\n", cfg.traceOut, len(slowTrace))
	}

	base, basePath, err := loadBaseline(cfg)
	if err != nil {
		fmt.Fprintf(w, "perfbench: loading baseline: %v\n", err)
		return 2
	}
	if base == nil {
		fmt.Fprintf(w, "no baseline for host %s — this run starts the trajectory\n",
			perfgate.CurrentHost().Fingerprint())
		return writeReport(cfg, cur, w, true)
	}

	deltas := perfgate.Compare(base, cur, cfg.scale)
	printDeltas(w, deltas, basePath)
	regs := perfgate.Regressions(deltas)
	if len(regs) > 0 {
		fmt.Fprintf(w, "\nPERF GATE FAILED: %d metric(s) regressed beyond tolerance (scale %.1f):\n",
			len(regs), cfg.scale)
		for _, d := range regs {
			if d.Verdict == perfgate.Missing {
				fmt.Fprintf(w, "  %-40s MISSING (baseline %.3g %s, not measured now)\n", d.Name, d.Base, d.Unit)
				continue
			}
			fmt.Fprintf(w, "  %-40s %+.1f%% (limit ±%.1f%%): %.3g -> %.3g %s\n",
				d.Name, d.ChangePct, d.LimitPct, d.Base, d.Cur, d.Unit)
		}
		if cfg.forceWrite {
			writeReport(cfg, cur, w, false)
		} else {
			fmt.Fprintf(w, "report not written (use -force-write to reset the baseline intentionally)\n")
		}
		return 1
	}
	fmt.Fprintf(w, "perf gate OK: %d metrics within tolerance of %s\n", len(deltas), basePath)
	return writeReport(cfg, cur, w, true)
}

func loadBaseline(cfg config) (*perfgate.Report, string, error) {
	if cfg.baseline != "" {
		r, err := perfgate.Load(cfg.baseline)
		return r, cfg.baseline, err
	}
	return perfgate.LoadLatest(cfg.dir, perfgate.CurrentHost(), cfg.anyHost)
}

func writeReport(cfg config, cur *perfgate.Report, w io.Writer, ok bool) int {
	if cfg.noWrite {
		return 0
	}
	path, err := cur.Write(cfg.dir)
	if err != nil {
		fmt.Fprintf(w, "perfbench: writing report: %v\n", err)
		return 2
	}
	fmt.Fprintf(w, "recorded %s (%d metrics)\n", path, len(cur.Metrics))
	_ = ok
	return 0
}

// runSuite measures everything and returns the report plus the trace of
// the slowest warm ppscan run.
func runSuite(cfg config, w io.Writer) (*perfgate.Report, []obsv.TraceEvent, error) {
	n, deg := int32(10_000), int32(16)
	kernelIters := 2000
	if cfg.quick {
		n, deg, kernelIters = 1500, 12, 400
	}
	g := gen.Roll(n, deg, 5)
	cur := perfgate.New(time.Now(), map[string]string{
		"graph":   fmt.Sprintf("roll(n=%d,deg=%d,seed=5)", n, deg),
		"eps":     cfg.eps,
		"mu":      fmt.Sprintf("%d", cfg.mu),
		"runs":    fmt.Sprintf("%d", cfg.runs),
		"quick":   fmt.Sprintf("%v", cfg.quick),
		"engines": strings.Join(cfg.engines, ","),
	})

	slowTrace, err := benchEngines(cfg, g, cur, w)
	if err != nil {
		return nil, nil, err
	}
	benchKernels(cfg, cur, kernelIters)
	if err := benchServer(cfg, g, cur); err != nil {
		return nil, nil, err
	}
	if err := benchMutations(cfg, g, cur); err != nil {
		return nil, nil, err
	}
	return cur, slowTrace, nil
}

// benchEngines measures per-engine cold and warm latency, the ppscan
// warm-path allocation count, and the per-phase durations extracted from
// the coordinator track of a traced ppscan run.
func benchEngines(cfg config, g *graph.Graph, cur *perfgate.Report, w io.Writer) ([]obsv.TraceEvent, error) {
	var slowTrace []obsv.TraceEvent
	var slowDur time.Duration
	tr := ppscan.NewTracer()
	phaseSamples := map[string][]float64{}
	for _, name := range cfg.engines {
		opt := ppscan.Options{
			Algorithm: ppscan.Algorithm(name), Epsilon: cfg.eps, Mu: cfg.mu,
		}
		ws := ppscan.NewWorkspace()
		// Cold: first contact with an empty workspace — buffer growth and
		// first-touch costs included.
		t0 := time.Now()
		if _, err := ppscan.RunWorkspace(context.Background(), g, opt, ws); err != nil {
			ws.Close()
			return nil, fmt.Errorf("engine %s (cold): %w", name, err)
		}
		cold := time.Since(t0)
		traced := name == string(ppscan.AlgoPPSCAN)
		warm := make([]float64, 0, cfg.runs)
		for i := 0; i < cfg.runs; i++ {
			if traced {
				tr.Reset()
				opt.Tracer = tr
			}
			t0 = time.Now()
			if _, err := ppscan.RunWorkspace(context.Background(), g, opt, ws); err != nil {
				ws.Close()
				return nil, fmt.Errorf("engine %s (warm): %w", name, err)
			}
			d := time.Since(t0)
			warm = append(warm, float64(d.Nanoseconds()))
			if traced {
				for phase, ns := range phaseDurations(tr) {
					phaseSamples[phase] = append(phaseSamples[phase], ns)
				}
				if d > slowDur {
					slowDur, slowTrace = d, tr.Events()
				}
			}
		}
		cur.Add("engine."+name+".warm_ns", perfgate.Median(warm), "ns", perfgate.Lower, 0.35, 0)
		if traced {
			// Only the flagship engine gates cold latency: cold runs are
			// one-sample by definition and noisy for every engine alike.
			cur.Add("engine."+name+".cold_ns", float64(cold.Nanoseconds()), "ns", perfgate.Lower, 0.6, 0)
			opt.Tracer = nil
			allocs := testing.AllocsPerRun(3, func() {
				if _, err := ppscan.RunWorkspace(context.Background(), g, opt, ws); err != nil {
					panic(err)
				}
			})
			// Near-zero counts get an absolute band: +3 objects is noise,
			// a relative band around 2 would reject +2.
			cur.Add("engine."+name+".warm_allocs", allocs, "objects", perfgate.Lower, 0, 3)
		}
		ws.Close()
		fmt.Fprintf(w, "  engine %-10s cold %8.2fms  warm(p50) %8.2fms\n",
			name, float64(cold)/1e6, perfgate.Median(warm)/1e6)
	}
	for phase, samples := range phaseSamples {
		// Individual phases jitter more than whole runs; give them a wide
		// band — the per-engine warm gate catches sustained drift.
		cur.Add("phase."+phase+".ns", perfgate.Median(samples), "ns", perfgate.Lower, 0.6, float64(200*time.Microsecond))
	}
	return slowTrace, nil
}

// phaseDurations extracts the P1–P7 span durations (ns) from the
// coordinator track (tid 0) of a traced run.
func phaseDurations(tr *ppscan.Tracer) map[string]float64 {
	out := map[string]float64{}
	for _, ev := range tr.Events() {
		if ev.Ph == "X" && ev.TID == 0 && strings.HasPrefix(ev.Name, "P") {
			out[ev.Name] += ev.Dur * 1e3 // trace durations are microseconds
		}
	}
	return out
}

// benchKernels measures every intersection kernel's throughput on a
// synthetic pair of sorted adjacency lists with ~50% overlap — the
// CompSim shape the pruning phase spends its time in.
func benchKernels(cfg config, cur *perfgate.Report, iters int) {
	const size = 4096
	a := make([]int32, size)
	b := make([]int32, size)
	for i := range a {
		a[i] = int32(2 * i) // evens
		b[i] = int32(4 * i) // every other even: 50% of b hits a
	}
	elems := float64(len(a) + len(b))
	minCN := int32(size / 4)
	for _, kind := range intersect.Kinds() {
		samples := make([]float64, 0, cfg.runs)
		for r := 0; r < cfg.runs; r++ {
			t0 := time.Now()
			for i := 0; i < iters; i++ {
				intersect.CompSim(kind, a, b, minCN)
			}
			secs := time.Since(t0).Seconds()
			samples = append(samples, elems*float64(iters)/secs/1e6)
		}
		cur.Add("kernel."+kind.String()+".melems_per_s", perfgate.Median(samples),
			"Melem/s", perfgate.Higher, 0.35, 0)
	}
}

// benchServer measures the end-to-end request latency of the HTTP serving
// stack — admission, pooled workspace, compute, JSON encoding — with the
// response cache rendered ineffective so every request computes.
func benchServer(cfg config, g *graph.Graph, cur *perfgate.Report) error {
	s := server.New(g, 0).WithCacheSize(1)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()
	urls := [2]string{
		fmt.Sprintf("%s/cluster?eps=%s&mu=%d", ts.URL, cfg.eps, cfg.mu),
		fmt.Sprintf("%s/cluster?eps=0.6&mu=%d", ts.URL, cfg.mu),
	}
	get := func(u string) error {
		res, err := client.Get(u)
		if err != nil {
			return err
		}
		defer res.Body.Close()
		if _, err := io.Copy(io.Discard, res.Body); err != nil {
			return err
		}
		if res.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: status %d", u, res.StatusCode)
		}
		return nil
	}
	// Warm the workspace pool and both cache keys' code paths.
	for _, u := range urls {
		if err := get(u); err != nil {
			return err
		}
	}
	samples := make([]float64, 0, 2*cfg.runs)
	for r := 0; r < cfg.runs; r++ {
		for _, u := range urls { // alternating keys defeat the size-1 cache
			t0 := time.Now()
			if err := get(u); err != nil {
				return err
			}
			samples = append(samples, float64(time.Since(t0).Nanoseconds()))
		}
	}
	cur.Add("server.request_ns", perfgate.Median(samples), "ns", perfgate.Lower, 0.4, 0)
	return benchSweep(cfg, g, cur)
}

// benchSweep measures the ε-sweep serving path: one similarity pass
// (GS*-Index attached, so builds are excluded) streamed as an 11-step
// NDJSON grid, plus the per-query warm latency of the index extraction
// that both the sweep and request coalescing are built on.
func benchSweep(cfg config, g *graph.Graph, cur *perfgate.Report) error {
	ix := ppscan.BuildIndex(g, 0)
	s := server.New(g, 0).WithIndex(ix).WithCacheSize(1)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()
	url := fmt.Sprintf("%s/cluster/sweep?eps=0.2:0.7:0.05&mu=%d", ts.URL, cfg.mu)
	sweep := func() error {
		res, err := client.Get(url)
		if err != nil {
			return err
		}
		defer res.Body.Close()
		if _, err := io.Copy(io.Discard, res.Body); err != nil {
			return err
		}
		if res.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: status %d", url, res.StatusCode)
		}
		return nil
	}
	if err := sweep(); err != nil { // warm the pool
		return err
	}
	samples := make([]float64, 0, cfg.runs)
	for r := 0; r < cfg.runs; r++ {
		t0 := time.Now()
		if err := sweep(); err != nil {
			return err
		}
		samples = append(samples, float64(time.Since(t0).Nanoseconds()))
	}
	cur.Add("server.sweep_request_ns", perfgate.Median(samples), "ns", perfgate.Lower, 0.4, 0)

	// Warm single-ε extraction: the unit of work a sweep repeats per step
	// and a coalesced waiter performs after the shared pass completes.
	ws := ppscan.NewWorkspace()
	defer ws.Close()
	if _, err := ppscan.QueryIndexWorkspace(context.Background(), ix, cfg.eps, cfg.mu, ws); err != nil {
		return err
	}
	qsamples := make([]float64, 0, cfg.runs)
	for r := 0; r < cfg.runs; r++ {
		t0 := time.Now()
		if _, err := ppscan.QueryIndexWorkspace(context.Background(), ix, cfg.eps, cfg.mu, ws); err != nil {
			return err
		}
		qsamples = append(qsamples, float64(time.Since(t0).Nanoseconds()))
	}
	cur.Add("index.query_warm_ns", perfgate.Median(qsamples), "ns", perfgate.Lower, 0.4, 0)
	return nil
}

// benchMutations measures the dynamic-graph pipeline: the copy-on-write
// snapshot commit of a 1%-churn batch (graph.commit_ns) and the
// incremental GS*-Index maintenance over that commit (index.update_ns).
// Each sample starts from the same epoch-0 snapshot with a differently
// seeded batch, so the measured work is one commit + one ApplyBatch of
// constant churn fraction, never a growing chain.
func benchMutations(cfg config, g *graph.Graph, cur *perfgate.Report) error {
	ix := ppscan.BuildIndex(g, 0)
	churn := int(g.NumEdges() / 100)
	if churn < 8 {
		churn = 8
	}
	ws := ppscan.NewWorkspace()
	defer ws.Close()
	commitSamples := make([]float64, 0, cfg.runs)
	updateSamples := make([]float64, 0, cfg.runs)
	for r := 0; r < cfg.runs; r++ {
		batch := churnBatch(g, churn, int64(100+r))
		store := ppscan.NewStore(g)
		t0 := time.Now()
		d, err := store.Commit(batch)
		if err != nil {
			return fmt.Errorf("mutation commit: %w", err)
		}
		commitSamples = append(commitSamples, float64(time.Since(t0).Nanoseconds()))
		if d.Empty() {
			return fmt.Errorf("mutation batch (seed %d) was a no-op", 100+r)
		}
		t0 = time.Now()
		if _, err := ppscan.ApplyIndexBatch(context.Background(), ix, d, 0, ws); err != nil {
			return fmt.Errorf("incremental index update: %w", err)
		}
		updateSamples = append(updateSamples, float64(time.Since(t0).Nanoseconds()))
	}
	cur.Add("graph.commit_ns", perfgate.Median(commitSamples), "ns", perfgate.Lower, 0.5, 0)
	cur.Add("index.update_ns", perfgate.Median(updateSamples), "ns", perfgate.Lower, 0.5, 0)
	return nil
}

// churnBatch builds a deterministic ~1%-churn mutation batch against g:
// half deletions of existing edges, half insertions of absent pairs.
func churnBatch(g *graph.Graph, n int, seed int64) []ppscan.EdgeOp {
	rng := rand.New(rand.NewSource(seed))
	nv := int(g.NumVertices())
	ops := make([]ppscan.EdgeOp, 0, n)
	for len(ops) < n {
		u := int32(rng.Intn(nv))
		if len(ops)%2 == 0 {
			nbrs := g.Neighbors(u)
			if len(nbrs) == 0 {
				continue
			}
			ops = append(ops, ppscan.EdgeOp{U: u, V: nbrs[rng.Intn(len(nbrs))], Del: true})
			continue
		}
		v := int32(rng.Intn(nv))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		ops = append(ops, ppscan.EdgeOp{U: u, V: v})
	}
	return ops
}

func writeTrace(path string, events []obsv.TraceEvent) error {
	b, err := json.Marshal(obsv.NewTraceFile(events))
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

func printDeltas(w io.Writer, deltas []perfgate.Delta, basePath string) {
	fmt.Fprintf(w, "\ncomparing against %s:\n", basePath)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "METRIC\tBASE\tCURRENT\tCHANGE\tVERDICT\n")
	sorted := append([]perfgate.Delta(nil), deltas...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	for _, d := range sorted {
		change := "-"
		if d.Verdict != perfgate.NewMetric && d.Verdict != perfgate.Missing {
			change = fmt.Sprintf("%+.1f%%", d.ChangePct)
		}
		fmt.Fprintf(tw, "%s\t%.3g\t%.3g\t%s\t%s\n", d.Name, d.Base, d.Cur, change, d.Verdict)
	}
	tw.Flush()
}
