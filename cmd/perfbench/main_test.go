package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ppscan/internal/fault"
	"ppscan/internal/perfgate"
)

// TestGateTripsOnInjectedDelay is the acceptance check for the whole
// gate: record a baseline, then re-run with a synthetic per-task delay —
// the run must exit 1, name the regressed metrics, and must NOT write the
// regressed report into the trajectory.
func TestGateTripsOnInjectedDelay(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick suite twice")
	}
	defer fault.Disable()
	dir := t.TempDir()
	var out bytes.Buffer
	if code := realMain([]string{"-quick", "-runs", "2", "-dir", dir, "-engines", "ppscan"}, &out); code != 0 {
		t.Fatalf("baseline run: exit %d\n%s", code, out.String())
	}
	if n := countReports(t, dir); n != 1 {
		t.Fatalf("baseline run left %d reports, want 1", n)
	}

	out.Reset()
	code := realMain([]string{
		"-quick", "-runs", "2", "-dir", dir, "-engines", "ppscan",
		"-inject-delay", "500us",
	}, &out)
	if code != 1 {
		t.Fatalf("injected-delay run: exit %d, want 1\n%s", code, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "PERF GATE FAILED") {
		t.Errorf("failure output lacks the gate banner:\n%s", s)
	}
	if !strings.Contains(s, "engine.ppscan.warm_ns") {
		t.Errorf("failure output does not name the regressed warm-latency metric:\n%s", s)
	}
	if n := countReports(t, dir); n != 1 {
		t.Errorf("regressed run wrote a report: %d files, want 1 (the baseline)", n)
	}
}

// TestTraceOutAndForceWrite: -trace-out produces a loadable trace file
// and -force-write records a report even when the gate fails.
func TestTraceOutAndForceWrite(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick suite twice")
	}
	defer fault.Disable()
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	var out bytes.Buffer
	args := []string{"-quick", "-runs", "1", "-dir", dir, "-engines", "ppscan", "-trace-out", tracePath}
	if code := realMain(args, &out); code != 0 {
		t.Fatalf("baseline run: exit %d\n%s", code, out.String())
	}
	b, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("trace not written: %v", err)
	}
	if !strings.Contains(string(b), `"traceEvents"`) {
		t.Errorf("trace file is not a Chrome trace: %s", b[:min(len(b), 120)])
	}

	out.Reset()
	code := realMain([]string{
		"-quick", "-runs", "1", "-dir", dir, "-engines", "ppscan",
		"-inject-delay", "500us", "-force-write",
	}, &out)
	if code != 1 {
		t.Fatalf("injected run: exit %d, want 1\n%s", code, out.String())
	}
	// The regressed report must still have been recorded (-force-write);
	// asserting on the output sidesteps same-second stamp collisions.
	if !strings.Contains(out.String(), "recorded ") {
		t.Errorf("-force-write did not record the regressed report:\n%s", out.String())
	}
}

func countReports(t *testing.T, dir string) int {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, perfgate.FilePrefix+"*.json"))
	if err != nil {
		t.Fatal(err)
	}
	return len(matches)
}
