// Command ppscan runs structural graph clustering on an edge-list or binary
// graph file (or a named synthetic dataset) and reports roles, clusters and
// hubs/outliers.
//
// Usage:
//
//	ppscan -graph web.txt -eps 0.6 -mu 5
//	ppscan -dataset orkut-sim -algo pscan -eps 0.2 -mu 5 -stats
//	ppscan -dataset ROLL-d40 -eps 0.5 -mu 5 -workers 8 -kernel pivot-block16 -clusters
//	ppscan -dataset ROLL-d40 -eps 0.5 -mu 5 -trace run.json -stats-json stats.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"ppscan"
	"ppscan/graph"
	"ppscan/internal/dataset"
	"ppscan/internal/fault"
	"ppscan/internal/obsv"
	"ppscan/internal/result"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "path to an edge-list (.txt) or binary (.bin) graph file")
		dsName    = flag.String("dataset", "", "named synthetic dataset (alternative to -graph); one of "+fmt.Sprint(dataset.Names()))
		scale     = flag.Float64("scale", 1.0, "dataset scale factor (with -dataset)")
		algo      = flag.String("algo", "ppscan", "algorithm: ppscan, ppscan-no, pscan, scan, scan-xp, anyscan, scan++, dist-scan, or \"all\" to run and cross-check every one")
		eps       = flag.String("eps", "0.6", "similarity threshold epsilon in (0,1], e.g. 0.6 or 3/5")
		mu        = flag.Int("mu", 5, "core threshold mu >= 1")
		workers   = flag.Int("workers", 0, "worker goroutines for parallel algorithms (0 = GOMAXPROCS)")
		kernel    = flag.String("kernel", "", "set-intersection kernel override (merge, merge-early, gallop, pivot-scalar, pivot-block8, pivot-block16, pivot-fused)")
		showStats = flag.Bool("stats", false, "print run statistics")
		clusters  = flag.Bool("clusters", false, "print every cluster's members")
		hubs      = flag.Bool("hubs", false, "print hub and outlier vertices")
		outPath   = flag.String("o", "", "write the full result (roles, clusters, memberships) to this file")
		jsonOut   = flag.Bool("json", false, "print a machine-readable JSON run report instead of the summary line")
		quiet     = flag.Bool("q", false, "suppress the summary line")
		tracePath = flag.String("trace", "", "write a Chrome trace_event JSON of the run to this file (algo ppscan/ppscan-no only); open in chrome://tracing or ui.perfetto.dev")
		statsJSON = flag.String("stats-json", "", "write the run report plus a metrics-registry snapshot as JSON to this file")
		chaosSeed = flag.Int64("chaos-seed", 0, "arm deterministic fault injection with this seed (0 = off); the run then exercises the containment paths — worker panics become structured errors, transient superstep faults retry")
		watchdog  = flag.Duration("watchdog", 0, "phase stall watchdog: abort a run whose scheduler makes no progress for this long (0 = off)")
	)
	flag.Parse()
	if *chaosSeed != 0 {
		fault.Enable(fault.NewPlan(*chaosSeed))
		fmt.Fprintf(os.Stderr, "ppscan: fault injection armed (seed %d)\n", *chaosSeed)
	}

	g, name, err := loadGraph(*graphPath, *dsName, *scale)
	if err != nil {
		fatal(err)
	}
	if *algo == "all" {
		runAll(g, name, *eps, *mu, *workers)
		return
	}
	var res *ppscan.Result
	if *tracePath != "" {
		res, err = runTraced(g, *algo, *eps, *mu, *workers, *kernel, *tracePath, *watchdog)
	} else {
		res, err = ppscan.Run(g, ppscan.Options{
			Algorithm:    ppscan.Algorithm(*algo),
			Epsilon:      *eps,
			Mu:           *mu,
			Workers:      *workers,
			Kernel:       *kernel,
			StallTimeout: *watchdog,
		})
	}
	if err != nil {
		fatal(err)
	}

	switch {
	case *jsonOut:
		if err := result.NewRunReport(g, res).WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
	case !*quiet:
		fmt.Printf("%s: |V|=%d |E|=%d algo=%s eps=%s mu=%d -> %d cores, %d clusters, %d non-core memberships in %v\n",
			name, g.NumVertices(), g.NumEdges(), res.Stats.Algorithm, *eps, *mu,
			res.NumCores(), res.NumClusters(), len(res.NonCore), res.Stats.Total)
	}
	if *showStats {
		fmt.Printf("workers=%d compsim-calls=%d\n", res.Stats.Workers, res.Stats.CompSimCalls)
		for i, d := range res.Stats.PhaseTimes {
			if d > 0 {
				fmt.Printf("phase %-20s %v\n", phaseName(i), d)
			}
		}
	}
	if *clusters {
		printClusters(res)
	}
	if *hubs {
		printHubs(g, res)
	}
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		if err := ppscan.WriteResult(f, res); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if *statsJSON != "" {
		if err := writeStatsJSON(*statsJSON, g, res); err != nil {
			fatal(err)
		}
	}
}

// runTraced runs the selected algorithm with a span tracer threaded
// through the facade (ppscan.Options.Tracer) and writes the Chrome
// trace_event JSON to path. Only the two ppSCAN variants emit spans —
// the same dispatch path and defaults as an untraced run, trace attached.
func runTraced(g *graph.Graph, algo, eps string, mu, workers int, kernel, path string, watchdog time.Duration) (*ppscan.Result, error) {
	if algo != "ppscan" && algo != "ppscan-no" {
		return nil, fmt.Errorf("-trace requires -algo ppscan or ppscan-no (got %q)", algo)
	}
	tr := ppscan.NewTracer()
	res, err := ppscan.Run(g, ppscan.Options{
		Algorithm:    ppscan.Algorithm(algo),
		Epsilon:      eps,
		Mu:           mu,
		Workers:      workers,
		Kernel:       kernel,
		StallTimeout: watchdog,
		Tracer:       tr,
	})
	if err != nil {
		return nil, err
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return nil, err
	}
	return res, f.Close()
}

// writeStatsJSON dumps the run report together with the process-global
// metrics registry (phase, kernel and scheduler telemetry accumulated by
// the run) as one JSON document.
func writeStatsJSON(path string, g *graph.Graph, res *ppscan.Result) error {
	out := map[string]any{
		"report":  result.NewRunReport(g, res),
		"metrics": obsv.Default().Snapshot(),
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runAll executes every algorithm on the same input, prints a comparison
// table, and fails loudly if any two results differ — a built-in
// cross-validation mode. All runs share one workspace, so the scratch
// buffers are allocated once and each result is cloned out of them before
// the next algorithm overwrites the memory.
func runAll(g *graph.Graph, name, eps string, mu, workers int) {
	fmt.Printf("%s: |V|=%d |E|=%d eps=%s mu=%d\n", name, g.NumVertices(), g.NumEdges(), eps, mu)
	fmt.Printf("%-10s %12s %16s %10s\n", "algorithm", "runtime", "CompSim calls", "clusters")
	ws := ppscan.NewWorkspace()
	defer ws.Close()
	var ref *ppscan.Result
	for _, algo := range ppscan.Algorithms() {
		res, err := ppscan.RunWorkspace(context.Background(), g, ppscan.Options{
			Algorithm: algo, Epsilon: eps, Mu: mu, Workers: workers,
		}, ws)
		if err != nil {
			fatal(err)
		}
		res = res.Clone()
		fmt.Printf("%-10s %12v %16d %10d\n",
			algo, res.Stats.Total.Round(time.Microsecond), res.Stats.CompSimCalls, res.NumClusters())
		if ref == nil {
			ref = res
		} else if err := ppscan.Equal(ref, res); err != nil {
			fatal(fmt.Errorf("%s disagrees with %s: %w", algo, ref.Stats.Algorithm, err))
		}
	}
	fmt.Println("all algorithms produced identical clusterings")
}

func loadGraph(path, ds string, scale float64) (*graph.Graph, string, error) {
	switch {
	case path != "" && ds != "":
		return nil, "", fmt.Errorf("use only one of -graph and -dataset")
	case path != "":
		g, err := graph.LoadFile(path)
		return g, path, err
	case ds != "":
		g, err := dataset.Load(ds, scale)
		return g, ds, err
	default:
		return nil, "", fmt.Errorf("one of -graph or -dataset is required")
	}
}

func phaseName(i int) string {
	names := []string{"similarity-pruning", "core-checking", "core-clustering", "non-core-clustering"}
	if i < len(names) {
		return names[i]
	}
	return fmt.Sprintf("phase-%d", i)
}

func printClusters(res *ppscan.Result) {
	cl := res.Clusters()
	ids := make([]int32, 0, len(cl))
	for id := range cl {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		fmt.Printf("cluster %d (%d members):", id, len(cl[id]))
		for _, v := range cl[id] {
			fmt.Printf(" %d", v)
		}
		fmt.Println()
	}
}

func printHubs(g *graph.Graph, res *ppscan.Result) {
	att := ppscan.ClassifyHubsOutliers(g, res)
	var hubs, outliers []int32
	for v, a := range att {
		switch a {
		case ppscan.AttachHub:
			hubs = append(hubs, int32(v))
		case ppscan.AttachOutlier:
			outliers = append(outliers, int32(v))
		}
	}
	fmt.Printf("hubs (%d):", len(hubs))
	for _, v := range hubs {
		fmt.Printf(" %d", v)
	}
	fmt.Printf("\noutliers (%d):", len(outliers))
	for _, v := range outliers {
		fmt.Printf(" %d", v)
	}
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ppscan:", err)
	os.Exit(1)
}
