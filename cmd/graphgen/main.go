// Command graphgen generates synthetic graphs and writes them as edge-list
// (.txt) or binary CSR (.bin) files.
//
// Usage:
//
//	graphgen -kind roll -n 100000 -deg 40 -seed 7 -o roll.bin
//	graphgen -kind er -n 10000 -m 50000 -o er.txt
//	graphgen -dataset twitter-sim -scale 0.5 -o twitter.bin
//	graphgen -kind roll -n 10000 -deg 16 -o roll.bin -mutations 500 -mutations-out churn.ndjson
//
// With -mutations N, graphgen additionally emits N deterministic edge-churn
// operations as NDJSON — the wire format POST /edges accepts (scanserver
// -mutations) — derived from the generated graph with -mutation-seed:
// deletions pick existing edges, insertions pick currently-absent pairs,
// so a fresh server loaded with the graph accepts the whole stream as
// effective churn.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"ppscan/graph"
	"ppscan/internal/dataset"
	"ppscan/internal/gen"
)

func main() {
	var (
		kind   = flag.String("kind", "", "generator: er, roll, rmat, pp, ws, clique-chain")
		ds     = flag.String("dataset", "", "named surrogate dataset (alternative to -kind); one of "+fmt.Sprint(dataset.Names()))
		scale  = flag.Float64("scale", 1.0, "dataset scale factor (with -dataset)")
		n      = flag.Int("n", 10000, "number of vertices (er, roll, ws) / per-community size context (pp)")
		m      = flag.Int64("m", 50000, "number of edges (er, rmat)")
		deg    = flag.Int("deg", 16, "average degree (roll) / ring degree (ws)")
		lgN    = flag.Int("scale2", 14, "log2 vertex count (rmat)")
		comm   = flag.Int("comm", 50, "communities (pp) / cliques (clique-chain)")
		csize  = flag.Int("csize", 100, "community size (pp) / clique size (clique-chain)")
		pin    = flag.Float64("pin", 0.1, "intra-community probability (pp)")
		pout   = flag.Float64("pout", 0.001, "inter-community probability (pp)")
		beta   = flag.Float64("beta", 0.1, "rewiring probability (ws)")
		seed   = flag.Int64("seed", 1, "random seed")
		out    = flag.String("o", "", "output path (.txt or .bin); required")
		statsF = flag.Bool("stats", true, "print the generated graph's statistics")

		mutations  = flag.Int("mutations", 0, "additionally emit this many deterministic edge-churn operations as NDJSON (the POST /edges wire format); 0 = none")
		mutSeed    = flag.Int64("mutation-seed", 1, "random seed for the -mutations churn stream")
		mutOut     = flag.String("mutations-out", "-", "churn output path for -mutations (\"-\" = stdout)")
		mutDelFrac = flag.Float64("mutation-del-frac", 0.5, "fraction of -mutations operations that are deletions of existing edges (the rest insert absent pairs)")
	)
	flag.Parse()
	if *out == "" {
		fatal(fmt.Errorf("-o output path is required"))
	}

	var g *graph.Graph
	var err error
	switch {
	case *ds != "":
		g, err = dataset.Load(*ds, *scale)
		if err != nil {
			fatal(err)
		}
	case *kind == "er":
		g = gen.ErdosRenyi(int32(*n), *m, *seed)
	case *kind == "roll":
		g = gen.Roll(int32(*n), int32(*deg), *seed)
	case *kind == "rmat":
		g = gen.RMAT(*lgN, *m, 0.57, 0.19, 0.19, *seed)
	case *kind == "pp":
		g = gen.PlantedPartition(int32(*comm), int32(*csize), *pin, *pout, *seed)
	case *kind == "ws":
		g = gen.WattsStrogatz(int32(*n), int32(*deg), *beta, *seed)
	case *kind == "clique-chain":
		g = gen.CliqueChain(int32(*comm), int32(*csize))
	default:
		fatal(fmt.Errorf("unknown -kind %q (want er, roll, rmat, pp, ws, clique-chain) and no -dataset given", *kind))
	}

	if err := graph.SaveFile(*out, g); err != nil {
		fatal(err)
	}
	if *statsF {
		fmt.Println(graph.ComputeStats(*out, g))
	}
	if *mutations > 0 {
		w := io.Writer(os.Stdout)
		if *mutOut != "-" {
			f, err := os.Create(*mutOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := emitChurn(w, g, *mutations, *mutSeed, *mutDelFrac); err != nil {
			fatal(err)
		}
	}
}

// emitChurn writes n NDJSON edge operations derived deterministically from
// g and seed. Deletions sample existing edges (random vertex, random
// neighbor); insertions sample absent pairs by rejection. The stream is
// generated against the STATIC graph g, so ops can collide (a deleted edge
// re-deleted later); the server's batch normalization makes those no-ops,
// which is itself realistic churn.
func emitChurn(w io.Writer, g *graph.Graph, n int, seed int64, delFrac float64) error {
	nv := g.NumVertices()
	if nv < 2 {
		return fmt.Errorf("-mutations needs a graph with at least 2 vertices")
	}
	rng := rand.New(rand.NewSource(seed))
	bw := bufio.NewWriter(w)
	for i := 0; i < n; i++ {
		if g.NumEdges() > 0 && rng.Float64() < delFrac {
			// Delete: random non-isolated vertex, random neighbor.
			for {
				u := int32(rng.Intn(int(nv)))
				nbrs := g.Neighbors(u)
				if len(nbrs) == 0 {
					continue
				}
				v := nbrs[rng.Intn(len(nbrs))]
				fmt.Fprintf(bw, "{\"u\":%d,\"v\":%d,\"op\":\"del\"}\n", u, v)
				break
			}
			continue
		}
		// Insert: rejection-sample a currently-absent pair.
		for {
			u, v := int32(rng.Intn(int(nv))), int32(rng.Intn(int(nv)))
			if u == v || g.HasEdge(u, v) {
				continue
			}
			fmt.Fprintf(bw, "{\"u\":%d,\"v\":%d,\"op\":\"add\"}\n", u, v)
			break
		}
	}
	return bw.Flush()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphgen:", err)
	os.Exit(1)
}
