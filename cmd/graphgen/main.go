// Command graphgen generates synthetic graphs and writes them as edge-list
// (.txt) or binary CSR (.bin) files.
//
// Usage:
//
//	graphgen -kind roll -n 100000 -deg 40 -seed 7 -o roll.bin
//	graphgen -kind er -n 10000 -m 50000 -o er.txt
//	graphgen -dataset twitter-sim -scale 0.5 -o twitter.bin
package main

import (
	"flag"
	"fmt"
	"os"

	"ppscan/graph"
	"ppscan/internal/dataset"
	"ppscan/internal/gen"
)

func main() {
	var (
		kind   = flag.String("kind", "", "generator: er, roll, rmat, pp, ws, clique-chain")
		ds     = flag.String("dataset", "", "named surrogate dataset (alternative to -kind); one of "+fmt.Sprint(dataset.Names()))
		scale  = flag.Float64("scale", 1.0, "dataset scale factor (with -dataset)")
		n      = flag.Int("n", 10000, "number of vertices (er, roll, ws) / per-community size context (pp)")
		m      = flag.Int64("m", 50000, "number of edges (er, rmat)")
		deg    = flag.Int("deg", 16, "average degree (roll) / ring degree (ws)")
		lgN    = flag.Int("scale2", 14, "log2 vertex count (rmat)")
		comm   = flag.Int("comm", 50, "communities (pp) / cliques (clique-chain)")
		csize  = flag.Int("csize", 100, "community size (pp) / clique size (clique-chain)")
		pin    = flag.Float64("pin", 0.1, "intra-community probability (pp)")
		pout   = flag.Float64("pout", 0.001, "inter-community probability (pp)")
		beta   = flag.Float64("beta", 0.1, "rewiring probability (ws)")
		seed   = flag.Int64("seed", 1, "random seed")
		out    = flag.String("o", "", "output path (.txt or .bin); required")
		statsF = flag.Bool("stats", true, "print the generated graph's statistics")
	)
	flag.Parse()
	if *out == "" {
		fatal(fmt.Errorf("-o output path is required"))
	}

	var g *graph.Graph
	var err error
	switch {
	case *ds != "":
		g, err = dataset.Load(*ds, *scale)
		if err != nil {
			fatal(err)
		}
	case *kind == "er":
		g = gen.ErdosRenyi(int32(*n), *m, *seed)
	case *kind == "roll":
		g = gen.Roll(int32(*n), int32(*deg), *seed)
	case *kind == "rmat":
		g = gen.RMAT(*lgN, *m, 0.57, 0.19, 0.19, *seed)
	case *kind == "pp":
		g = gen.PlantedPartition(int32(*comm), int32(*csize), *pin, *pout, *seed)
	case *kind == "ws":
		g = gen.WattsStrogatz(int32(*n), int32(*deg), *beta, *seed)
	case *kind == "clique-chain":
		g = gen.CliqueChain(int32(*comm), int32(*csize))
	default:
		fatal(fmt.Errorf("unknown -kind %q (want er, roll, rmat, pp, ws, clique-chain) and no -dataset given", *kind))
	}

	if err := graph.SaveFile(*out, g); err != nil {
		fatal(err)
	}
	if *statsF {
		fmt.Println(graph.ComputeStats(*out, g))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphgen:", err)
	os.Exit(1)
}
